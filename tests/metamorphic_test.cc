// Every transform in the metamorphic catalogue must preserve the language of
// arbitrary formulas (checked against the evaluator and against translated
// automata), and the deliberately broken F/G-swap must be caught — proof
// that a verdict change under a "equivalence" transform is a detectable
// signal, not noise.

#include "testing/metamorphic.h"

#include <gtest/gtest.h>

#include "automata/word.h"
#include "ltl/evaluator.h"
#include "ltl/parser.h"
#include "testing/generators.h"
#include "translate/ltl_to_ba.h"
#include "util/rng.h"

namespace ctdb::testing {
namespace {

TEST(MetamorphicTest, CatalogueIsNonTrivial) {
  const auto& transforms = EquivalenceTransforms();
  ASSERT_GE(transforms.size(), 6u);
  for (const auto& t : transforms) {
    EXPECT_NE(t.name, nullptr);
    EXPECT_NE(t.apply, nullptr);
  }
}

TEST(MetamorphicTest, TransformsPreserveEvaluatorVerdicts) {
  Rng rng(42);
  for (int i = 0; i < 120; ++i) {
    ltl::FormulaFactory fac;
    const size_t num_events = 3;
    const ltl::Formula* f = RandomFormula(&rng, &fac, num_events, 3);
    for (const MetamorphicTransform& t : EquivalenceTransforms()) {
      const ltl::Formula* tf = t.apply(f, &fac);
      for (int w = 0; w < 8; ++w) {
        const LassoWord word = RandomWord(&rng, num_events, 4, 3);
        EXPECT_EQ(ltl::Evaluate(f, word), ltl::Evaluate(tf, word))
            << "transform '" << t.name << "' changed the verdict on draw "
            << i << ", f = " << f->ToString(TestVocabulary(num_events));
      }
    }
  }
}

TEST(MetamorphicTest, TransformsPreserveAutomatonLanguage) {
  Rng rng(7);
  for (int i = 0; i < 25; ++i) {
    ltl::FormulaFactory fac;
    const size_t num_events = 3;
    const ltl::Formula* f = RandomFormula(&rng, &fac, num_events, 2);
    auto fba = translate::LtlToBuchi(f, &fac);
    ASSERT_TRUE(fba.ok());
    for (const MetamorphicTransform& t : EquivalenceTransforms()) {
      const ltl::Formula* tf = t.apply(f, &fac);
      auto tba = translate::LtlToBuchi(tf, &fac);
      ASSERT_TRUE(tba.ok()) << t.name;
      for (int w = 0; w < 6; ++w) {
        const LassoWord word = RandomWord(&rng, num_events, 3, 3);
        EXPECT_EQ(automata::AcceptsWord(*fba, word),
                  automata::AcceptsWord(*tba, word))
            << "transform '" << t.name << "' changed the language on draw "
            << i;
      }
    }
  }
}

TEST(MetamorphicTest, ExpandBeforeMatchesPaperDefinition) {
  ltl::FormulaFactory fac;
  Vocabulary vocab = TestVocabulary(2);
  auto f = ltl::Parse("e0 B e1", &fac, &vocab);
  ASSERT_TRUE(f.ok());
  auto expected = ltl::Parse("!(!e0 U e1)", &fac, &vocab);
  ASSERT_TRUE(expected.ok());
  for (const MetamorphicTransform& t : EquivalenceTransforms()) {
    if (std::string(t.name) != "expand-before") continue;
    EXPECT_EQ(t.apply(*f, &fac), *expected);  // hash-consed identity
    return;
  }
  FAIL() << "catalogue is missing expand-before";
}

// Injected bug: the F/G swap is not an equivalence and the evaluator probe
// must notice on a concrete witness word.
TEST(MetamorphicTest, BrokenSwapIsDetectedByEvaluatorProbe) {
  ltl::FormulaFactory fac;
  Vocabulary vocab = TestVocabulary(1);
  auto f = ltl::Parse("F e0", &fac, &vocab);
  ASSERT_TRUE(f.ok());
  const ltl::Formula* broken = BrokenSwapFinallyGlobally(*f, &fac);
  EXPECT_NE(broken, *f);

  // Word: {} ({e0})^ω — F e0 holds, G e0 does not.
  LassoWord word;
  word.prefix.push_back(Snapshot(1));
  Snapshot with(1);
  with.Set(0);
  word.cycle.push_back(with);
  EXPECT_TRUE(ltl::Evaluate(*f, word));
  EXPECT_FALSE(ltl::Evaluate(broken, word));
}

TEST(MetamorphicTest, BrokenSwapIsIdentityWithoutFinallyOrGlobally) {
  ltl::FormulaFactory fac;
  Vocabulary vocab = TestVocabulary(2);
  auto f = ltl::Parse("e0 U (e1 & !e0)", &fac, &vocab);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(BrokenSwapFinallyGlobally(*f, &fac), *f);
}

}  // namespace
}  // namespace ctdb::testing
