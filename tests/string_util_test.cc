#include "util/string_util.h"

#include <gtest/gtest.h>

namespace ctdb {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nhi\r\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"x"}, ", "), "x");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(StringUtilTest, StringFormat) {
  EXPECT_EQ(StringFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StringFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StringFormat("plain"), "plain");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MiB");
}

}  // namespace
}  // namespace ctdb
