#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace ctdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_EQ(Status::Corruption("bad crc").ToString(), "Corruption: bad crc");
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_EQ(Status::Unavailable("queue full").ToString(),
            "Unavailable: queue full");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
}

Status FailsWhen(bool fail) {
  if (fail) return Status::Internal("boom");
  return Status::OK();
}

Status UsesReturnNotOk(bool fail) {
  CTDB_RETURN_NOT_OK(FailsWhen(fail));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(UsesReturnNotOk(false).ok());
  EXPECT_TRUE(UsesReturnNotOk(true).IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

Result<int> Doubled(Result<int> in) {
  CTDB_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_TRUE(Doubled(Status::Internal("x")).status().IsInternal());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace ctdb
