#include "projection/projection.h"

#include <gtest/gtest.h>

#include "automata/bisimulation.h"
#include "automata/quotient.h"
#include "core/permission.h"
#include "testing/generators.h"
#include "translate/ltl_to_ba.h"

namespace ctdb::projection {
namespace {

using automata::Buchi;
using automata::StateId;

Label L(std::initializer_list<Literal> lits) {
  return Label::FromLiterals(std::vector<Literal>(lits));
}

TEST(RetainedLiteralsTest, FromKeySplitsPolarities) {
  // Literals: +e0 (id 0), -e2 (id 5).
  const RetainedLiterals r = RetainedLiterals::FromKey({0, 5});
  EXPECT_TRUE(r.pos.Test(0));
  EXPECT_FALSE(r.pos.Test(2));
  EXPECT_TRUE(r.neg.Test(2));
  EXPECT_FALSE(r.neg.Test(0));
}

TEST(RetainedLiteralsTest, AllOfKeepsBothPolarities) {
  Bitset events(3);
  events.Set(1);
  const RetainedLiterals r = RetainedLiterals::AllOf(events);
  EXPECT_TRUE(r.pos.Test(1));
  EXPECT_TRUE(r.neg.Test(1));
  EXPECT_FALSE(r.pos.Test(0));
}

TEST(NeededEventsTest, IntersectsQueryWithContract) {
  Bitset query(4);
  query.Set(0);
  query.Set(2);
  Bitset contract(4);
  contract.Set(2);
  contract.Set(3);
  const Bitset needed = NeededEvents(query, contract);
  EXPECT_FALSE(needed.Test(0));  // not in contract: can't conflict
  EXPECT_TRUE(needed.Test(2));
  EXPECT_FALSE(needed.Test(3));  // not in query: never compared
}

TEST(ProjectTest, DropsUnretainedLiterals) {
  Buchi ba;
  const StateId s = ba.AddState();
  ba.SetFinal(s);
  ba.AddTransition(0, L({{0, false}, {1, true}}), s);
  ba.AddTransition(s, Label(), s);
  Bitset keep(2);
  keep.Set(1);
  const Buchi p = Project(ba, RetainedLiterals::AllOf(keep));
  ASSERT_EQ(p.Out(0).size(), 1u);
  EXPECT_EQ(p.Out(0)[0].label.LiteralCount(), 1u);
  EXPECT_TRUE(p.Out(0)[0].label.Contains(Literal{1, true}));
}

/// Theorem 9 as a property: permission is invariant under replacing the
/// contract BA with the bisimulation quotient of its projection, for every
/// query whose literals the projection retains (we retain both polarities of
/// all query-label events, the store's superset policy).
TEST(ProjectionEquivalenceTest, Theorem9OnRandomContractQueryPairs) {
  const size_t kEvents = 3;
  ltl::FormulaFactory fac;
  const Vocabulary vocab = ctdb::testing::TestVocabulary(kEvents);
  Rng rng(90909);
  int checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const ltl::Formula* cf =
        ctdb::testing::RandomFormula(&rng, &fac, kEvents, 3);
    const ltl::Formula* qf =
        ctdb::testing::RandomFormula(&rng, &fac, kEvents, 2);
    auto cba = translate::LtlToBuchi(cf, &fac);
    auto qba = translate::LtlToBuchi(qf, &fac);
    ASSERT_TRUE(cba.ok());
    ASSERT_TRUE(qba.ok());
    Bitset contract_events;
    cf->CollectEvents(&contract_events);
    contract_events.Resize(kEvents);

    // Project onto the events the query's labels cite (both polarities).
    const Bitset retained =
        NeededEvents(qba->CitedEvents(), cba->CitedEvents());
    automata::BisimulationOptions options;
    Bitset retained_resized = retained;
    retained_resized.Resize(kEvents);
    options.retained_pos = &retained_resized;
    options.retained_neg = &retained_resized;
    const automata::Partition part =
        automata::CoarsestBisimulation(*cba, options);
    const Buchi quotient = automata::BuildQuotient(
        *cba, part, &retained_resized, &retained_resized);

    const bool original =
        core::Permits(*cba, contract_events, *qba);
    const bool simplified =
        core::Permits(quotient, contract_events, *qba);
    ASSERT_EQ(original, simplified)
        << "contract: " << cf->ToString(vocab)
        << "\nquery: " << qf->ToString(vocab);
    ++checked;
  }
  EXPECT_EQ(checked, 200);
}

/// Theorem 3 as a property: partitions refine monotonically along the
/// retained-literal lattice.
TEST(ProjectionLatticeTest, Theorem3RefinementOrder) {
  const size_t kEvents = 3;
  ltl::FormulaFactory fac;
  Rng rng(80808);
  for (int trial = 0; trial < 100; ++trial) {
    const ltl::Formula* cf =
        ctdb::testing::RandomFormula(&rng, &fac, kEvents, 3);
    auto cba = translate::LtlToBuchi(cf, &fac);
    ASSERT_TRUE(cba.ok());

    Bitset small(kEvents);
    small.Set(0);
    Bitset large(kEvents);
    large.Set(0);
    large.Set(1);

    automata::BisimulationOptions small_opt;
    small_opt.retained_pos = &small;
    small_opt.retained_neg = &small;
    const automata::Partition p_small =
        automata::CoarsestBisimulation(*cba, small_opt);

    automata::BisimulationOptions large_opt;
    large_opt.retained_pos = &large;
    large_opt.retained_neg = &large;
    const automata::Partition p_large =
        automata::CoarsestBisimulation(*cba, large_opt);

    EXPECT_TRUE(p_large.Refines(p_small));

    // And starting the large computation from the small partition gives the
    // same result (the lattice-order optimization's correctness).
    automata::BisimulationOptions seeded = large_opt;
    seeded.start = &p_small;
    const automata::Partition p_seeded =
        automata::CoarsestBisimulation(*cba, seeded);
    EXPECT_EQ(p_seeded, p_large);
  }
}

}  // namespace
}  // namespace ctdb::projection
