#include "ltl/patterns.h"

#include <gtest/gtest.h>

#include "ltl/evaluator.h"
#include "ltl/parser.h"

namespace ctdb::ltl {
namespace {

class PatternsTest : public ::testing::Test {
 protected:
  PatternsTest() : vocab_({"p", "s", "q", "r"}) {
    p_ = fac_.Prop(0);
    s_ = fac_.Prop(1);
    q_ = fac_.Prop(2);
    r_ = fac_.Prop(3);
  }

  const Formula* Make(PatternBehavior b, PatternScope s) {
    return MakePattern(b, s, p_, s_, q_, r_, &fac_);
  }

  const Formula* F(const std::string& text) {
    auto res = Parse(text, &fac_, &vocab_);
    EXPECT_TRUE(res.ok()) << res.status();
    return *res;
  }

  Vocabulary vocab_;
  FormulaFactory fac_;
  const Formula* p_;
  const Formula* s_;
  const Formula* q_;
  const Formula* r_;
};

// Each expected string is the Table 3 form (with the two typo rows replaced
// by the original formulas of Dwyer et al. [8]).
TEST_F(PatternsTest, Table3AbsenceForms) {
  EXPECT_EQ(Make(PatternBehavior::kAbsence, PatternScope::kGlobal),
            F("G(!p)"));
  EXPECT_EQ(Make(PatternBehavior::kAbsence, PatternScope::kBefore),
            F("F r -> (!p U r)"));
  EXPECT_EQ(Make(PatternBehavior::kAbsence, PatternScope::kAfter),
            F("G(q -> G(!p))"));
  EXPECT_EQ(Make(PatternBehavior::kAbsence, PatternScope::kBetween),
            F("G((q & !r & F r) -> (!p U r))"));
}

TEST_F(PatternsTest, Table3ExistenceForms) {
  EXPECT_EQ(Make(PatternBehavior::kExistence, PatternScope::kGlobal),
            F("F p"));
  EXPECT_EQ(Make(PatternBehavior::kExistence, PatternScope::kBefore),
            F("!r W (p & !r)"));
  EXPECT_EQ(Make(PatternBehavior::kExistence, PatternScope::kAfter),
            F("G(!q) | F(q & F p)"));
  EXPECT_EQ(Make(PatternBehavior::kExistence, PatternScope::kBetween),
            F("G(q & !r -> (!r W (p & !r)))"));
}

TEST_F(PatternsTest, Table3UniversalityForms) {
  EXPECT_EQ(Make(PatternBehavior::kUniversality, PatternScope::kGlobal),
            F("G p"));
  EXPECT_EQ(Make(PatternBehavior::kUniversality, PatternScope::kBefore),
            F("F r -> (p U r)"));
  EXPECT_EQ(Make(PatternBehavior::kUniversality, PatternScope::kAfter),
            F("G(q -> G p)"));
  EXPECT_EQ(Make(PatternBehavior::kUniversality, PatternScope::kBetween),
            F("G((q & !r & F r) -> (p U r))"));
}

TEST_F(PatternsTest, Table3PrecedenceForms) {
  EXPECT_EQ(Make(PatternBehavior::kPrecedence, PatternScope::kGlobal),
            F("F p -> (!p U (s | G(!p)))"));
  EXPECT_EQ(Make(PatternBehavior::kPrecedence, PatternScope::kBefore),
            F("F r -> (!p U (s | r))"));
  EXPECT_EQ(Make(PatternBehavior::kPrecedence, PatternScope::kAfter),
            F("G(!q) | F(q & (!p U (s | G(!p))))"));
  EXPECT_EQ(Make(PatternBehavior::kPrecedence, PatternScope::kBetween),
            F("G((q & !r & F r) -> (!p U (s | r)))"));
}

TEST_F(PatternsTest, Table3ResponseForms) {
  EXPECT_EQ(Make(PatternBehavior::kResponse, PatternScope::kGlobal),
            F("G(p -> F s)"));
  EXPECT_EQ(Make(PatternBehavior::kResponse, PatternScope::kBefore),
            F("F r -> ((p -> (!r U (s & !r))) U r)"));
  EXPECT_EQ(Make(PatternBehavior::kResponse, PatternScope::kAfter),
            F("G(q -> G(p -> F s))"));
  EXPECT_EQ(Make(PatternBehavior::kResponse, PatternScope::kBetween),
            F("G((q & !r & F r) -> ((p -> (!r U (s & !r))) U r))"));
}

TEST_F(PatternsTest, ArityMatchesParameterUse) {
  EXPECT_EQ(PatternArity(PatternBehavior::kAbsence, PatternScope::kGlobal), 1);
  EXPECT_EQ(PatternArity(PatternBehavior::kAbsence, PatternScope::kBetween), 3);
  EXPECT_EQ(PatternArity(PatternBehavior::kResponse, PatternScope::kGlobal), 2);
  EXPECT_EQ(PatternArity(PatternBehavior::kResponse, PatternScope::kBetween), 4);
  EXPECT_EQ(PatternArity(PatternBehavior::kPrecedence, PatternScope::kBefore), 3);
}

TEST_F(PatternsTest, SurveyFrequenciesShapeMatchesDwyer) {
  const PatternFrequencies f = PatternFrequencies::Survey();
  ASSERT_EQ(f.behavior.size(), 5u);
  ASSERT_EQ(f.scope.size(), 4u);
  // Response is the most common behavior; global the dominant scope.
  EXPECT_EQ(f.behavior[4], *std::max_element(f.behavior.begin(),
                                             f.behavior.end()));
  EXPECT_EQ(f.scope[0],
            *std::max_element(f.scope.begin(), f.scope.end()));
}

TEST_F(PatternsTest, NamesRoundTrip) {
  EXPECT_STREQ(PatternBehaviorName(PatternBehavior::kAbsence), "absence");
  EXPECT_STREQ(PatternBehaviorName(PatternBehavior::kResponse), "response");
  EXPECT_STREQ(PatternScopeName(PatternScope::kBetween), "between");
}

Snapshot Snap(bool p, bool s = false, bool q = false, bool r = false) {
  Snapshot snap(4);
  if (p) snap.Set(0);
  if (s) snap.Set(1);
  if (q) snap.Set(2);
  if (r) snap.Set(3);
  return snap;
}

TEST_F(PatternsTest, BoundedExistenceSemantics) {
  const Formula* at_most_2 = MakeBoundedExistence(p_, 2, &fac_);
  LassoWord two;
  two.prefix = {Snap(true), Snap(false), Snap(true)};
  two.cycle = {Snap(false)};
  EXPECT_TRUE(Evaluate(at_most_2, two));
  LassoWord three;
  three.prefix = {Snap(true), Snap(true), Snap(true)};
  three.cycle = {Snap(false)};
  EXPECT_FALSE(Evaluate(at_most_2, three));
  LassoWord forever;
  forever.cycle = {Snap(true)};
  EXPECT_FALSE(Evaluate(at_most_2, forever));
  LassoWord none;
  none.cycle = {Snap(false)};
  EXPECT_TRUE(Evaluate(at_most_2, none));
  // k = 0 is plain absence.
  EXPECT_EQ(MakeBoundedExistence(p_, 0, &fac_), F("G !p"));
}

TEST_F(PatternsTest, PrecedenceChainSemantics) {
  // s then t must precede any p.
  const Formula* f = MakePrecedenceChain(s_, q_, p_, &fac_);
  auto word = [](std::initializer_list<const char*> steps) {
    LassoWord w;
    for (const char* step : steps) {
      Snapshot snap(4);
      const std::string sstr(step);
      if (sstr.find('p') != std::string::npos) snap.Set(0);
      if (sstr.find('s') != std::string::npos) snap.Set(1);
      if (sstr.find('q') != std::string::npos) snap.Set(2);
      w.prefix.push_back(std::move(snap));
    }
    w.cycle.push_back(Snapshot(4));
    return w;
  };
  EXPECT_TRUE(Evaluate(f, word({"s", "q", "p"})));
  EXPECT_FALSE(Evaluate(f, word({"q", "s", "p"})));  // wrong chain order
  EXPECT_FALSE(Evaluate(f, word({"s", "p", "q"})));  // p before t
  EXPECT_TRUE(Evaluate(f, word({"", ""})));          // no p at all: vacuous
}

TEST_F(PatternsTest, ResponseChainSemantics) {
  // every p must be followed by s then strictly later t.
  const Formula* f = MakeResponseChain(p_, s_, q_, &fac_);
  auto word = [](std::initializer_list<const char*> steps) {
    LassoWord w;
    for (const char* step : steps) {
      Snapshot snap(4);
      const std::string sstr(step);
      if (sstr.find('p') != std::string::npos) snap.Set(0);
      if (sstr.find('s') != std::string::npos) snap.Set(1);
      if (sstr.find('q') != std::string::npos) snap.Set(2);
      w.prefix.push_back(std::move(snap));
    }
    w.cycle.push_back(Snapshot(4));
    return w;
  };
  EXPECT_TRUE(Evaluate(f, word({"p", "s", "q"})));
  EXPECT_FALSE(Evaluate(f, word({"p", "s"})));       // t missing
  EXPECT_FALSE(Evaluate(f, word({"p", "q", "s"})));  // t before s only
  EXPECT_TRUE(Evaluate(f, word({"p", "q", "s", "q"})));
  EXPECT_TRUE(Evaluate(f, word({""})));              // vacuous
}

TEST_F(PatternsTest, ResponsePatternSemantics) {
  const Formula* response = Make(PatternBehavior::kResponse,
                                 PatternScope::kGlobal);
  LassoWord answered;
  answered.prefix = {Snap(true), Snap(false, true)};
  answered.cycle = {Snap(false)};
  EXPECT_TRUE(Evaluate(response, answered));
  LassoWord unanswered;
  unanswered.prefix = {Snap(true)};
  unanswered.cycle = {Snap(false)};
  EXPECT_FALSE(Evaluate(response, unanswered));
}

TEST_F(PatternsTest, PrecedencePatternSemantics) {
  const Formula* precedence = Make(PatternBehavior::kPrecedence,
                                   PatternScope::kGlobal);
  LassoWord s_first;
  s_first.prefix = {Snap(false, true), Snap(true)};
  s_first.cycle = {Snap(false)};
  EXPECT_TRUE(Evaluate(precedence, s_first));
  LassoWord p_unpreceded;
  p_unpreceded.prefix = {Snap(true)};
  p_unpreceded.cycle = {Snap(false)};
  EXPECT_FALSE(Evaluate(precedence, p_unpreceded));
  LassoWord no_p;
  no_p.cycle = {Snap(false)};
  EXPECT_TRUE(Evaluate(precedence, no_p));
}

}  // namespace
}  // namespace ctdb::ltl
