#include "automata/buchi.h"

#include <gtest/gtest.h>

#include "automata/dot.h"

namespace ctdb::automata {
namespace {

Label L(std::initializer_list<Literal> lits) {
  return Label::FromLiterals(std::vector<Literal>(lits));
}

TEST(BuchiTest, StartsWithSingleInitialState) {
  Buchi ba;
  EXPECT_EQ(ba.StateCount(), 1u);
  EXPECT_EQ(ba.initial(), 0u);
  EXPECT_EQ(ba.TransitionCount(), 0u);
  EXPECT_FALSE(ba.IsFinal(0));
  EXPECT_TRUE(ba.Validate().ok());
}

TEST(BuchiTest, AddStatesAndTransitions) {
  Buchi ba;
  const StateId s1 = ba.AddState();
  const StateId s2 = ba.AddState();
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(s2, 2u);
  ba.SetFinal(s2);
  ba.AddTransition(0, L({{0, false}}), s1);
  ba.AddTransition(s1, Label(), s2);
  ba.AddTransition(s2, Label(), s2);
  EXPECT_EQ(ba.TransitionCount(), 3u);
  EXPECT_TRUE(ba.IsFinal(s2));
  EXPECT_FALSE(ba.IsFinal(s1));
  EXPECT_EQ(ba.FinalCount(), 1u);
  EXPECT_TRUE(ba.Validate().ok());
}

TEST(BuchiTest, AddStatesBulk) {
  Buchi ba;
  const StateId first = ba.AddStates(5);
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(ba.StateCount(), 6u);
}

TEST(BuchiTest, UnsatisfiableTransitionsDropped) {
  Buchi ba;
  Label contradiction = L({{0, false}, {0, true}});
  ba.AddTransition(0, contradiction, 0);
  EXPECT_EQ(ba.TransitionCount(), 0u);
}

TEST(BuchiTest, CitedEvents) {
  Buchi ba;
  const StateId s1 = ba.AddState();
  ba.AddTransition(0, L({{2, false}}), s1);
  ba.AddTransition(s1, L({{5, true}}), 0);
  const Bitset events = ba.CitedEvents();
  EXPECT_TRUE(events.Test(2));
  EXPECT_TRUE(events.Test(5));
  EXPECT_FALSE(events.Test(0));
  EXPECT_EQ(events.Count(), 2u);
}

TEST(BuchiTest, DistinctLabels) {
  Buchi ba;
  const StateId s1 = ba.AddState();
  ba.AddTransition(0, L({{0, false}}), s1);
  ba.AddTransition(s1, L({{0, false}}), 0);
  ba.AddTransition(0, L({{1, true}}), s1);
  EXPECT_EQ(ba.DistinctLabels().size(), 2u);
}

TEST(BuchiTest, DedupTransitions) {
  Buchi ba;
  const StateId s1 = ba.AddState();
  ba.AddTransition(0, L({{0, false}}), s1);
  ba.AddTransition(0, L({{0, false}}), s1);
  ba.AddTransition(0, L({{0, false}}), 0);  // different target: kept
  EXPECT_EQ(ba.TransitionCount(), 3u);
  ba.DedupTransitions();
  EXPECT_EQ(ba.TransitionCount(), 2u);
}

TEST(BuchiTest, ReverseAdjacency) {
  Buchi ba;
  const StateId s1 = ba.AddState();
  ba.AddTransition(0, Label(), s1);
  ba.AddTransition(s1, Label(), s1);
  const auto in = ba.BuildReverseAdjacency();
  EXPECT_TRUE(in[0].empty());
  ASSERT_EQ(in[s1].size(), 2u);
}

TEST(BuchiTest, DotExportShape) {
  Vocabulary vocab({"go"});
  Buchi ba;
  const StateId s1 = ba.AddState();
  ba.SetFinal(s1);
  ba.AddTransition(0, L({{0, false}}), s1);
  const std::string dot = ToDot(ba, vocab);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("label=\"go\""), std::string::npos);
  EXPECT_NE(dot.find("s0 -> s1"), std::string::npos);
}

}  // namespace
}  // namespace ctdb::automata
