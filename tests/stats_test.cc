#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace ctdb {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample stddev of this classic set: sqrt(32/7).
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(99);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble() * 100 - 50;
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  RunningStats merged = left;
  merged.Merge(right);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(merged.stddev(), all.stddev(), 1e-9);
  EXPECT_EQ(merged.min(), all.min());
  EXPECT_EQ(merged.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats empty;
  RunningStats b = a;
  b.Merge(empty);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  RunningStats c = empty;
  c.Merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(RunningStatsTest, ToStringContainsFields) {
  RunningStats s;
  s.Add(1.0);
  const std::string str = s.ToString();
  EXPECT_NE(str.find("n=1"), std::string::npos);
  EXPECT_NE(str.find("mean=1.000"), std::string::npos);
}

}  // namespace
}  // namespace ctdb
