#include "automata/scc.h"

#include <gtest/gtest.h>

namespace ctdb::automata {
namespace {

TEST(SccTest, SingleStateNoLoop) {
  Buchi ba;
  const SccInfo scc = ComputeScc(ba);
  EXPECT_EQ(scc.count, 1u);
  EXPECT_FALSE(scc.cyclic[scc.component[0]]);
}

TEST(SccTest, SelfLoopIsCyclic) {
  Buchi ba;
  ba.AddTransition(0, Label(), 0);
  const SccInfo scc = ComputeScc(ba);
  EXPECT_EQ(scc.count, 1u);
  EXPECT_TRUE(scc.cyclic[scc.component[0]]);
}

TEST(SccTest, ChainIsAllTrivial) {
  Buchi ba;
  const StateId s1 = ba.AddState();
  const StateId s2 = ba.AddState();
  ba.AddTransition(0, Label(), s1);
  ba.AddTransition(s1, Label(), s2);
  const SccInfo scc = ComputeScc(ba);
  EXPECT_EQ(scc.count, 3u);
  for (StateId s = 0; s < 3; ++s) {
    EXPECT_FALSE(scc.cyclic[scc.component[s]]);
  }
  // Reverse topological order: successors get smaller component ids.
  EXPECT_GT(scc.component[0], scc.component[s1]);
  EXPECT_GT(scc.component[s1], scc.component[s2]);
}

TEST(SccTest, CycleGroupsStates) {
  Buchi ba;
  const StateId s1 = ba.AddState();
  const StateId s2 = ba.AddState();
  const StateId s3 = ba.AddState();
  ba.AddTransition(0, Label(), s1);
  ba.AddTransition(s1, Label(), s2);
  ba.AddTransition(s2, Label(), s1);
  ba.AddTransition(s2, Label(), s3);
  const SccInfo scc = ComputeScc(ba);
  EXPECT_EQ(scc.count, 3u);  // {0}, {s1,s2}, {s3}
  EXPECT_EQ(scc.component[s1], scc.component[s2]);
  EXPECT_NE(scc.component[0], scc.component[s1]);
  EXPECT_TRUE(scc.cyclic[scc.component[s1]]);
  EXPECT_FALSE(scc.cyclic[scc.component[s3]]);
}

TEST(SccTest, HasFinalFlag) {
  Buchi ba;
  const StateId s1 = ba.AddState();
  ba.SetFinal(s1);
  ba.AddTransition(0, Label(), s1);
  ba.AddTransition(s1, Label(), 0);
  const SccInfo scc = ComputeScc(ba);
  EXPECT_EQ(scc.count, 1u);
  EXPECT_TRUE(scc.has_final[0]);
  EXPECT_TRUE(scc.OnFinalCycle(0));
  EXPECT_TRUE(scc.OnFinalCycle(s1));
}

TEST(SccTest, OnFinalCycleRequiresBoth) {
  Buchi ba;
  const StateId loop = ba.AddState();   // cyclic, no final
  const StateId fin = ba.AddState();    // final, no cycle
  ba.SetFinal(fin);
  ba.AddTransition(0, Label(), loop);
  ba.AddTransition(loop, Label(), loop);
  ba.AddTransition(loop, Label(), fin);
  const SccInfo scc = ComputeScc(ba);
  EXPECT_FALSE(scc.OnFinalCycle(loop));
  EXPECT_FALSE(scc.OnFinalCycle(fin));
  EXPECT_FALSE(scc.OnFinalCycle(0));
}

TEST(SccTest, DisconnectedStatesCovered) {
  Buchi ba;
  ba.AddState();  // unreachable but still decomposed
  const SccInfo scc = ComputeScc(ba);
  EXPECT_EQ(scc.count, 2u);
  EXPECT_EQ(scc.component.size(), 2u);
}

TEST(SccTest, LargeCycleSingleComponent) {
  Buchi ba;
  const size_t n = 500;
  StateId prev = 0;
  for (size_t i = 1; i < n; ++i) {
    const StateId s = ba.AddState();
    ba.AddTransition(prev, Label(), s);
    prev = s;
  }
  ba.AddTransition(prev, Label(), 0);
  const SccInfo scc = ComputeScc(ba);
  EXPECT_EQ(scc.count, 1u);
  EXPECT_TRUE(scc.cyclic[0]);
}

}  // namespace
}  // namespace ctdb::automata
