// QueryBatch / pooled-Query equivalence: across the workload generator's
// Dwyer-pattern specifications (§7.2), batched and pooled evaluation must
// return exactly the match sets of the single-threaded serial prototype.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "automata/word.h"
#include "broker/database.h"
#include "ltl/evaluator.h"
#include "ltl/parser.h"
#include "workload/generator.h"

namespace ctdb::broker {
namespace {

/// A database of generated Dwyer-pattern contracts plus a mixed query
/// workload (1/2/3 patterns per query, as Table 2's query levels).
struct GeneratedWorkload {
  std::unique_ptr<ContractDatabase> db;
  std::vector<std::string> queries;
};

class QueryBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    BuildWorkload(options, /*contracts=*/18, /*queries_per_level=*/6);
    if (HasFatalFailure()) return;
  }

  GeneratedWorkload workload_;

  void BuildWorkload(const DatabaseOptions& options, size_t contracts,
                     size_t queries_per_level) {
    workload_.db = std::make_unique<ContractDatabase>(options);
    workload::GeneratorOptions gen;
    gen.vocabulary_size = 12;
    gen.properties = 3;
    workload::SpecGenerator contracts_gen(gen, 0xC0FFEE,
                                          workload_.db->vocabulary(),
                                          workload_.db->factory());
    for (size_t i = 0; i < contracts; ++i) {
      auto spec = contracts_gen.Next();
      ASSERT_TRUE(spec.ok()) << spec.status();
      auto id = workload_.db->RegisterFormula("c" + std::to_string(i),
                                              spec->formula, spec->text);
      ASSERT_TRUE(id.ok()) << id.status();
    }
    for (size_t patterns : {1u, 2u, 3u}) {
      workload::GeneratorOptions qgen;
      qgen.vocabulary_size = 12;
      qgen.properties = patterns;
      workload::SpecGenerator queries_gen(qgen, 0xBEEF00 + patterns,
                                          workload_.db->vocabulary(),
                                          workload_.db->factory());
      for (size_t i = 0; i < queries_per_level; ++i) {
        auto spec = queries_gen.Next();
        ASSERT_TRUE(spec.ok()) << spec.status();
        workload_.queries.push_back(spec->text);
      }
    }
  }

  /// Serial ground truth: one Query call per text, threads forced to 1.
  std::vector<QueryResult> SerialResults(const QueryOptions& base) {
    QueryOptions serial = base;
    serial.threads = 1;
    std::vector<QueryResult> results;
    for (const std::string& q : workload_.queries) {
      auto r = workload_.db->Query(q, serial);
      EXPECT_TRUE(r.ok()) << q << ": " << r.status();
      results.push_back(r.ok() ? std::move(*r) : QueryResult{});
    }
    return results;
  }
};

TEST_F(QueryBatchTest, BatchSerialMatchesQuerySerial) {
  const std::vector<QueryResult> serial = SerialResults({});
  QueryOptions options;
  options.threads = 1;
  auto batch = workload_.db->QueryBatch(workload_.queries, options);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ((*batch)[i].matches, serial[i].matches)
        << workload_.queries[i];
  }
}

TEST_F(QueryBatchTest, BatchParallelMatchesQuerySerial) {
  const std::vector<QueryResult> serial = SerialResults({});
  for (size_t threads : {2u, 4u, 7u}) {
    QueryOptions options;
    options.threads = threads;
    auto batch = workload_.db->QueryBatch(workload_.queries, options);
    ASSERT_TRUE(batch.ok()) << batch.status();
    ASSERT_EQ(batch->size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ((*batch)[i].matches, serial[i].matches)
          << workload_.queries[i] << " threads=" << threads;
      EXPECT_TRUE(std::is_sorted((*batch)[i].matches.begin(),
                                 (*batch)[i].matches.end()));
    }
  }
}

TEST_F(QueryBatchTest, PooledQueryMatchesSerialOnGeneratedWorkload) {
  const std::vector<QueryResult> serial = SerialResults({});
  QueryOptions options;
  options.threads = 4;
  for (size_t i = 0; i < workload_.queries.size(); ++i) {
    auto r = workload_.db->Query(workload_.queries[i], options);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->matches, serial[i].matches) << workload_.queries[i];
  }
}

TEST_F(QueryBatchTest, BatchUnoptimizedScanAgreesWithOptimized) {
  // Prefilter and projections off (the §3 scan) must select the same
  // contracts, batched or not.
  QueryOptions scan;
  scan.use_prefilter = false;
  scan.use_projections = false;
  scan.threads = 3;
  const std::vector<QueryResult> serial = SerialResults({});
  auto batch = workload_.db->QueryBatch(workload_.queries, scan);
  ASSERT_TRUE(batch.ok()) << batch.status();
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ((*batch)[i].matches, serial[i].matches)
        << workload_.queries[i];
  }
}

TEST_F(QueryBatchTest, BatchWitnessesAreRealPermittedBehaviors) {
  QueryOptions options;
  options.threads = 4;
  options.collect_witnesses = true;
  auto batch = workload_.db->QueryBatch(workload_.queries, options);
  ASSERT_TRUE(batch.ok()) << batch.status();
  size_t checked = 0;
  for (size_t i = 0; i < batch->size(); ++i) {
    const QueryResult& r = (*batch)[i];
    ASSERT_EQ(r.witnesses.size(), r.matches.size());
    auto query = ltl::Parse(workload_.queries[i], workload_.db->factory(),
                            workload_.db->vocabulary());
    ASSERT_TRUE(query.ok());
    for (size_t m = 0; m < r.matches.size(); ++m) {
      const LassoWord& w = r.witnesses[m];
      if (w.cycle.empty()) continue;  // no witness extracted
      // A witness must satisfy the query…
      EXPECT_TRUE(ltl::Evaluate(*query, w)) << workload_.queries[i];
      // …and be a run of the matched contract's automaton.
      EXPECT_TRUE(automata::AcceptsWord(
          workload_.db->contract(r.matches[m]).automaton(), w));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(QueryBatchTest, BatchStatsAreFilled) {
  QueryOptions options;
  options.threads = 4;
  auto batch = workload_.db->QueryBatch(workload_.queries, options);
  ASSERT_TRUE(batch.ok()) << batch.status();
  for (const QueryResult& r : *batch) {
    EXPECT_EQ(r.stats.database_size, workload_.db->size());
    EXPECT_GT(r.stats.query_states, 0u);
    EXPECT_EQ(r.stats.matches, r.matches.size());
    EXPECT_GE(r.stats.candidates, r.stats.matches);
  }
}

TEST_F(QueryBatchTest, TotalTimeCoversSerialPhasesInBothModes) {
  // Documented invariant (database.h): `total_ms >= translate_ms +
  // prefilter_ms` in both modes. Serial total is the wall clock enclosing
  // all three phases; parallel total is defined as translate + prefilter +
  // summed permission CPU time, so the two serial phases can never exceed
  // it. Regression guard: an earlier formulation measured parallel total as
  // the batch's wall clock divided across queries, which undercut the
  // per-query phase sums.
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    QueryOptions options;
    options.threads = threads;
    auto batch = workload_.db->QueryBatch(workload_.queries, options);
    ASSERT_TRUE(batch.ok()) << batch.status();
    for (size_t i = 0; i < batch->size(); ++i) {
      const QueryStats& stats = (*batch)[i].stats;
      // Timer rounding: phases and totals come from separate Timer reads,
      // so allow a microsecond-scale epsilon.
      EXPECT_GE(stats.total_ms + 1e-3,
                stats.translate_ms + stats.prefilter_ms)
          << "threads=" << threads << " query " << i << ": "
          << stats.ToString();
      EXPECT_GE(stats.total_ms + 1e-3, stats.permission_ms)
          << "threads=" << threads << " query " << i;
    }
  }
}

TEST_F(QueryBatchTest, BatchRejectsUnknownEvents) {
  auto batch = workload_.db->QueryBatch({"F p1", "F no_such_event_xyz"});
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsNotFound()) << batch.status();
  EXPECT_NE(batch.status().message().find("query 1"), std::string::npos);
}

TEST_F(QueryBatchTest, EmptyBatch) {
  auto batch = workload_.db->QueryBatch({});
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_TRUE(batch->empty());
}

TEST_F(QueryBatchTest, DatabaseDefaultThreadsInherited) {
  // QueryOptions::threads == 0 inherits DatabaseOptions::threads; results
  // must stay identical to the serial prototype either way.
  const std::vector<QueryResult> serial = SerialResults({});

  DatabaseOptions parallel_db;
  parallel_db.threads = 4;
  GeneratedWorkload before = std::move(workload_);
  workload_ = GeneratedWorkload{};
  BuildWorkload(parallel_db, /*contracts=*/18, /*queries_per_level=*/6);
  ASSERT_EQ(workload_.queries, before.queries);

  auto batch = workload_.db->QueryBatch(workload_.queries);  // threads = 0
  ASSERT_TRUE(batch.ok()) << batch.status();
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ((*batch)[i].matches, serial[i].matches)
        << workload_.queries[i];
  }
}

}  // namespace
}  // namespace ctdb::broker
