#include "translate/ltl_to_ba.h"

#include <gtest/gtest.h>

#include "automata/ops.h"
#include "automata/word.h"
#include "ltl/parser.h"
#include "ltl/rewriter.h"
#include "translate/degeneralize.h"
#include "translate/tableau.h"

namespace ctdb::translate {
namespace {

using automata::AcceptsWord;
using automata::Buchi;
using automata::IsEmptyLanguage;

class TranslateTest : public ::testing::Test {
 protected:
  TranslateTest() : vocab_({"p", "q", "r"}) {}

  Buchi BA(const std::string& text) {
    auto f = ltl::Parse(text, &fac_, &vocab_);
    EXPECT_TRUE(f.ok()) << f.status();
    auto ba = LtlToBuchi(*f, &fac_);
    EXPECT_TRUE(ba.ok()) << text << ": " << ba.status();
    EXPECT_TRUE(ba->Validate().ok());
    return std::move(*ba);
  }

  Snapshot Snap(std::initializer_list<EventId> events) {
    Snapshot s(vocab_.size());
    for (EventId e : events) s.Set(e);
    return s;
  }

  Vocabulary vocab_;
  ltl::FormulaFactory fac_;
};

TEST_F(TranslateTest, TrueAcceptsEverything) {
  const Buchi ba = BA("true");
  EXPECT_FALSE(IsEmptyLanguage(ba));
  LassoWord w;
  w.prefix = {Snap({0}), Snap({1, 2})};
  w.cycle = {Snap({})};
  EXPECT_TRUE(AcceptsWord(ba, w));
}

TEST_F(TranslateTest, FalseIsEmpty) {
  EXPECT_TRUE(IsEmptyLanguage(BA("false")));
  EXPECT_TRUE(IsEmptyLanguage(BA("p & !p")));
  EXPECT_TRUE(IsEmptyLanguage(BA("F p & G !p")));
  EXPECT_TRUE(IsEmptyLanguage(BA("G(p) & F(!p)")));
}

TEST_F(TranslateTest, SatisfiableFormulasNonEmpty) {
  for (const char* text : {"p", "!p", "F p", "G p", "p U q", "p W q",
                           "p R q", "p B q", "G(p -> F q)",
                           "G(p -> X(!F p))", "F G p", "G F p"}) {
    EXPECT_FALSE(IsEmptyLanguage(BA(text))) << text;
  }
}

TEST_F(TranslateTest, PropositionChecksFirstSnapshot) {
  const Buchi ba = BA("p");
  LassoWord with;
  with.prefix = {Snap({0})};
  with.cycle = {Snap({})};
  EXPECT_TRUE(AcceptsWord(ba, with));
  LassoWord without;
  without.prefix = {Snap({1})};
  without.cycle = {Snap({0})};
  EXPECT_FALSE(AcceptsWord(ba, without));
}

TEST_F(TranslateTest, UntilRequiresWitness) {
  const Buchi ba = BA("p U q");
  LassoWord ok;
  ok.prefix = {Snap({0}), Snap({0}), Snap({1})};
  ok.cycle = {Snap({})};
  EXPECT_TRUE(AcceptsWord(ba, ok));
  LassoWord no_witness;
  no_witness.cycle = {Snap({0})};
  EXPECT_FALSE(AcceptsWord(ba, no_witness));
  LassoWord gap;
  gap.prefix = {Snap({0}), Snap({}), Snap({1})};
  gap.cycle = {Snap({})};
  EXPECT_FALSE(AcceptsWord(ba, gap));
}

TEST_F(TranslateTest, GloballyEventually) {
  const Buchi ba = BA("G F p");
  LassoWord infinitely;
  infinitely.cycle = {Snap({0}), Snap({})};
  EXPECT_TRUE(AcceptsWord(ba, infinitely));
  LassoWord finitely;
  finitely.prefix = {Snap({0}), Snap({0})};
  finitely.cycle = {Snap({})};
  EXPECT_FALSE(AcceptsWord(ba, finitely));
}

TEST_F(TranslateTest, LabelsCiteOnlyFormulaEvents) {
  const Buchi ba = BA("G(p -> F q)");
  const Bitset cited = ba.CitedEvents();
  EXPECT_FALSE(cited.Test(2));  // r not in the formula
}

TEST_F(TranslateTest, InfoReportsPipelineSizes) {
  auto f = ltl::Parse("G(p -> F q)", &fac_, &vocab_);
  TranslateInfo info;
  auto ba = LtlToBuchi(*f, &fac_, {}, &info);
  ASSERT_TRUE(ba.ok());
  EXPECT_GT(info.tableau_states, 0u);
  EXPECT_GE(info.degeneralized, info.final_states);
  EXPECT_EQ(info.final_states, ba->StateCount());
  EXPECT_EQ(info.final_transitions, ba->TransitionCount());
}

TEST_F(TranslateTest, ReductionsShrinkOrKeep) {
  auto f = ltl::Parse("G(p -> F q) & G(q -> F r)", &fac_, &vocab_);
  TranslateOptions raw;
  raw.prune = false;
  raw.reduce = false;
  raw.simplify_formula = false;
  auto big = LtlToBuchi(*f, &fac_, raw);
  auto small = LtlToBuchi(*f, &fac_);
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(small.ok());
  EXPECT_LE(small->StateCount(), big->StateCount());
}

TEST_F(TranslateTest, TableauNodeBudgetEnforced) {
  auto f = ltl::Parse(
      "(p U q) & (q U r) & (r U p) & (p U r) & (r U q) & (q U p)", &fac_,
      &vocab_);
  TranslateOptions options;
  options.tableau.max_nodes = 2;
  auto ba = LtlToBuchi(*f, &fac_, options);
  EXPECT_TRUE(ba.status().IsResourceExhausted());
}

TEST_F(TranslateTest, TableauRejectsNonNnfInput) {
  // BuildTableau is documented to require NNF.
  auto f = ltl::Parse("!(p U q)", &fac_, &vocab_);
  auto result = BuildTableau(*f, &fac_);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(TranslateTest, DegeneralizeZeroSetsMarksAllFinal) {
  GeneralizedBuchi gba;
  gba.automaton.AddTransition(0, Label(), 0);
  const Buchi ba = Degeneralize(gba);
  EXPECT_TRUE(ba.IsFinal(0));
  EXPECT_FALSE(IsEmptyLanguage(ba));
}

TEST_F(TranslateTest, DegeneralizeTwoSetsRequiresBoth) {
  // Two states looping: state 0 in F1 only, state 1 in F2 only.
  GeneralizedBuchi gba;
  Buchi& a = gba.automaton;
  const auto s1 = a.AddState();
  a.AddTransition(0, Label(), s1);
  a.AddTransition(s1, Label(), 0);
  Bitset f1(2);
  f1.Set(0);
  Bitset f2(2);
  f2.Set(s1);
  gba.acceptance = {f1, f2};
  const Buchi ba = Degeneralize(gba);
  EXPECT_FALSE(IsEmptyLanguage(ba));

  // Now make F2 unreachable-on-cycles: {} — language empty.
  gba.acceptance[1] = Bitset(2);
  const Buchi empty = Degeneralize(gba);
  EXPECT_TRUE(IsEmptyLanguage(empty));
}

TEST_F(TranslateTest, PaperExampleTicketAStructure) {
  // Ticket A (Figure 1a): no refund after date change, plus common clauses.
  Vocabulary vocab(
      {"purchase", "use", "missedFlight", "refund", "dateChange"});
  ltl::FormulaFactory fac;
  auto f = ltl::Parse("G(dateChange -> !F refund)", &fac, &vocab);
  ASSERT_TRUE(f.ok());
  auto ba = LtlToBuchi(*f, &fac);
  ASSERT_TRUE(ba.ok());
  EXPECT_FALSE(IsEmptyLanguage(*ba));
  // A run with dateChange then refund must be rejected…
  LassoWord bad;
  Snapshot dc(5);
  dc.Set(4);
  Snapshot rf(5);
  rf.Set(3);
  bad.prefix = {dc, rf};
  bad.cycle = {Snapshot(5)};
  EXPECT_FALSE(AcceptsWord(*ba, bad));
  // …refund then dateChange is fine.
  LassoWord good;
  good.prefix = {rf, dc};
  good.cycle = {Snapshot(5)};
  EXPECT_TRUE(AcceptsWord(*ba, good));
}

}  // namespace
}  // namespace ctdb::translate
