#include "relational/table.h"

#include <gtest/gtest.h>

namespace ctdb::relational {
namespace {

TEST(CompareTest, Numbers) {
  EXPECT_EQ(*Compare(Value{int64_t{1}}, Value{int64_t{2}}), -1);
  EXPECT_EQ(*Compare(Value{int64_t{2}}, Value{int64_t{2}}), 0);
  EXPECT_EQ(*Compare(Value{3.5}, Value{int64_t{3}}), 1);
  EXPECT_EQ(*Compare(Value{int64_t{3}}, Value{3.0}), 0);
}

TEST(CompareTest, Strings) {
  EXPECT_EQ(*Compare(Value{std::string("a")}, Value{std::string("b")}), -1);
  EXPECT_EQ(*Compare(Value{std::string("b")}, Value{std::string("b")}), 0);
}

TEST(CompareTest, MixedTypesError) {
  EXPECT_FALSE(Compare(Value{std::string("a")}, Value{int64_t{1}}).ok());
}

TEST(PredicateTest, AllOperators) {
  Row row{{"price", Value{int64_t{100}}}, {"route", Value{std::string("SAN-NYC")}}};
  EXPECT_TRUE(Matches(row, Predicate::Eq("price", int64_t{100})));
  EXPECT_TRUE(Matches(row, Predicate::Ne("price", int64_t{99})));
  EXPECT_TRUE(Matches(row, Predicate::Lt("price", int64_t{101})));
  EXPECT_TRUE(Matches(row, Predicate::Le("price", int64_t{100})));
  EXPECT_TRUE(Matches(row, Predicate::Gt("price", int64_t{99})));
  EXPECT_TRUE(Matches(row, Predicate::Ge("price", int64_t{100})));
  EXPECT_FALSE(Matches(row, Predicate::Lt("price", int64_t{100})));
  EXPECT_TRUE(Matches(row, Predicate::Eq("route", std::string("SAN-NYC"))));
}

TEST(PredicateTest, MissingAttributeNeverMatches) {
  Row row;
  EXPECT_FALSE(Matches(row, Predicate::Eq("price", int64_t{1})));
}

TEST(PredicateTest, IncomparableTypesNeverMatch) {
  Row row{{"price", Value{std::string("cheap")}}};
  EXPECT_FALSE(Matches(row, Predicate::Lt("price", int64_t{10})));
}

TEST(TableTest, PutGetSelect) {
  Table t;
  t.Put(0, {{"price", Value{int64_t{100}}}, {"route", Value{std::string("A-B")}}});
  t.Put(1, {{"price", Value{int64_t{200}}}, {"route", Value{std::string("A-B")}}});
  t.Put(2, {{"price", Value{int64_t{150}}}, {"route", Value{std::string("C-D")}}});
  EXPECT_EQ(t.size(), 3u);
  ASSERT_TRUE(t.Get(1).ok());
  EXPECT_TRUE(t.Get(9).status().IsNotFound());

  const auto cheap_ab = t.Select({Predicate::Eq("route", std::string("A-B")),
                                  Predicate::Le("price", int64_t{150})});
  EXPECT_EQ(cheap_ab, (std::vector<uint32_t>{0}));
  const auto all = t.Select({});
  EXPECT_EQ(all.size(), 3u);
}

TEST(TableTest, PutReplaces) {
  Table t;
  t.Put(0, {{"price", Value{int64_t{1}}}});
  t.Put(0, {{"price", Value{int64_t{2}}}});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(Matches(*t.Get(0), Predicate::Eq("price", int64_t{2})));
}

}  // namespace
}  // namespace ctdb::relational
