#include "automata/bisimulation.h"

#include <gtest/gtest.h>

#include "automata/quotient.h"
#include "automata/word.h"
#include "testing/generators.h"

namespace ctdb::automata {
namespace {

Label L(std::initializer_list<Literal> lits) {
  return Label::FromLiterals(std::vector<Literal>(lits));
}

TEST(PartitionTest, CanonicalizeRenumbersByFirstOccurrence) {
  Partition p;
  p.block_of = {5, 3, 5, 0};
  p.block_count = 6;
  p.Canonicalize();
  EXPECT_EQ(p.block_of, (std::vector<uint32_t>{0, 1, 0, 2}));
  EXPECT_EQ(p.block_count, 3u);
}

TEST(PartitionTest, Refines) {
  Partition fine;
  fine.block_of = {0, 1, 2, 2};
  fine.block_count = 3;
  Partition coarse;
  coarse.block_of = {0, 0, 1, 1};
  coarse.block_count = 2;
  EXPECT_TRUE(fine.Refines(coarse));
  EXPECT_FALSE(coarse.Refines(fine));
  EXPECT_TRUE(fine.Refines(fine));
}

TEST(PartitionTest, FactoryHelpers) {
  Buchi ba;
  ba.AddState();
  ba.SetFinal(1);
  const Partition discrete = Partition::Discrete(2);
  EXPECT_EQ(discrete.block_count, 2u);
  const Partition split = Partition::FinalSplit(ba);
  EXPECT_EQ(split.block_count, 2u);
  EXPECT_NE(split.block_of[0], split.block_of[1]);
}

/// Figure 4 of the paper in miniature: two states accepting the same
/// (!d)-forever language must collapse.
TEST(BisimulationTest, CollapsesLanguageEqualStates) {
  Buchi ba;
  const StateId a = ba.AddState();
  const StateId b = ba.AddState();
  ba.SetFinal(a);
  ba.SetFinal(b);
  const Label not_d = L({{0, true}});
  ba.AddTransition(0, not_d, a);
  ba.AddTransition(0, not_d, b);
  ba.AddTransition(a, not_d, a);
  ba.AddTransition(b, not_d, b);
  const Partition p = CoarsestBisimulation(ba);
  EXPECT_EQ(p.block_of[a], p.block_of[b]);
  EXPECT_NE(p.block_of[0], p.block_of[a]);  // init not final
  EXPECT_EQ(p.block_count, 2u);
}

TEST(BisimulationTest, FinalityIsRespected) {
  Buchi ba;
  const StateId a = ba.AddState();
  ba.SetFinal(a);
  // Same transitions but different finality: never merged.
  ba.AddTransition(0, Label(), 0);
  ba.AddTransition(a, Label(), a);
  // ... give them identical behavior otherwise.
  const Partition p = CoarsestBisimulation(ba);
  EXPECT_NE(p.block_of[0], p.block_of[a]);
}

TEST(BisimulationTest, DifferentLabelsPreventMerge) {
  Buchi ba;
  const StateId a = ba.AddState();
  const StateId b = ba.AddState();
  const StateId sink = ba.AddState();
  ba.SetFinal(sink);
  ba.AddTransition(sink, Label(), sink);
  ba.AddTransition(a, L({{0, false}}), sink);
  ba.AddTransition(b, L({{1, false}}), sink);
  const Partition p = CoarsestBisimulation(ba);
  EXPECT_NE(p.block_of[a], p.block_of[b]);
}

TEST(BisimulationTest, ProjectionMergesLabelDistinctions) {
  Buchi ba;
  const StateId a = ba.AddState();
  const StateId b = ba.AddState();
  const StateId sink = ba.AddState();
  ba.SetFinal(sink);
  ba.AddTransition(sink, Label(), sink);
  ba.AddTransition(a, L({{0, false}}), sink);
  ba.AddTransition(b, L({{1, false}}), sink);
  // Retain nothing: both labels project to `true` and a ~ b.
  Bitset none(2);
  BisimulationOptions options;
  options.retained_pos = &none;
  options.retained_neg = &none;
  const Partition p = CoarsestBisimulation(ba, options);
  EXPECT_EQ(p.block_of[a], p.block_of[b]);
}

TEST(BisimulationTest, StartPartitionIsRefined) {
  Buchi ba;
  const StateId a = ba.AddState();
  const StateId b = ba.AddState();
  // All three states are behaviorally identical (no transitions, non-final),
  // but a start partition separating {0} from {a, b} must stay separated.
  Partition start;
  start.block_of = {0, 1, 1};
  start.block_count = 2;
  BisimulationOptions options;
  options.start = &start;
  const Partition p = CoarsestBisimulation(ba, options);
  EXPECT_NE(p.block_of[0], p.block_of[a]);
  EXPECT_EQ(p.block_of[a], p.block_of[b]);
}

TEST(QuotientTest, BuildsBlocksAndPreservesStructure) {
  Buchi ba;
  const StateId a = ba.AddState();
  const StateId b = ba.AddState();
  ba.SetFinal(a);
  ba.SetFinal(b);
  const Label ell = L({{0, false}});
  ba.AddTransition(0, ell, a);
  ba.AddTransition(0, ell, b);
  ba.AddTransition(a, ell, a);
  ba.AddTransition(b, ell, b);
  const Partition p = CoarsestBisimulation(ba);
  const Buchi q = BuildQuotient(ba, p);
  EXPECT_EQ(q.StateCount(), 2u);
  EXPECT_EQ(q.TransitionCount(), 2u);  // init->block, block->block (deduped)
  EXPECT_EQ(q.FinalCount(), 1u);
  EXPECT_TRUE(q.Validate().ok());
}

/// Theorem 8 as a property: the quotient accepts exactly the same lasso words
/// as the original, on randomly generated automata.
TEST(BisimulationTest, QuotientPreservesLanguageOnRandomAutomata) {
  Rng rng(20110328);
  const size_t kEvents = 3;
  for (int trial = 0; trial < 60; ++trial) {
    Buchi ba;
    const size_t n = 2 + rng.Uniform(6);
    ba.AddStates(n - 1);
    for (size_t s = 0; s < n; ++s) {
      if (rng.Chance(0.4)) ba.SetFinal(static_cast<StateId>(s));
      const size_t out = rng.Uniform(4);
      for (size_t t = 0; t < out; ++t) {
        Label label;
        for (size_t e = 0; e < kEvents; ++e) {
          const uint64_t pick = rng.Uniform(3);
          if (pick == 1) label.AddPositive(static_cast<EventId>(e));
          if (pick == 2) label.AddNegative(static_cast<EventId>(e));
        }
        ba.AddTransition(static_cast<StateId>(s), label,
                         static_cast<StateId>(rng.Uniform(n)));
      }
    }
    const Partition p = CoarsestBisimulation(ba);
    const Buchi q = BuildQuotient(ba, p);
    for (int w = 0; w < 20; ++w) {
      const LassoWord word = ctdb::testing::RandomWord(&rng, kEvents, 3, 3);
      EXPECT_EQ(AcceptsWord(ba, word), AcceptsWord(q, word))
          << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace ctdb::automata
