#include "ltl/query_dsl.h"

#include <gtest/gtest.h>

#include "broker/database.h"
#include "ltl/evaluator.h"
#include "ltl/parser.h"

namespace ctdb::ltl::dsl {
namespace {

class QueryDslTest : public ::testing::Test {
 protected:
  QueryDslTest() : vocab_({"a", "b", "c"}) {
    a_ = fac_.Prop(0);
    b_ = fac_.Prop(1);
    c_ = fac_.Prop(2);
  }

  /// Word where each character of `trace` names one instant's single event
  /// ('.' = empty), followed by an empty cycle.
  LassoWord Word(const std::string& trace) {
    LassoWord w;
    for (char ch : trace) {
      Snapshot s(3);
      if (ch == 'a') s.Set(0);
      if (ch == 'b') s.Set(1);
      if (ch == 'c') s.Set(2);
      w.prefix.push_back(std::move(s));
    }
    w.cycle.push_back(Snapshot(3));
    return w;
  }

  Vocabulary vocab_;
  FormulaFactory fac_;
  const Formula* a_;
  const Formula* b_;
  const Formula* c_;
};

TEST_F(QueryDslTest, SequenceRequiresStrictOrder) {
  const Formula* f = Sequence({a_, b_, c_}, &fac_);
  EXPECT_TRUE(Evaluate(f, Word("abc")));
  EXPECT_TRUE(Evaluate(f, Word("a.b..c")));
  EXPECT_FALSE(Evaluate(f, Word("acb")));
  EXPECT_FALSE(Evaluate(f, Word("ab")));
  // Strictness: a single instant cannot satisfy two steps of the same event.
  const Formula* twice = Sequence({a_, a_}, &fac_);
  EXPECT_FALSE(Evaluate(twice, Word("a")));
  EXPECT_TRUE(Evaluate(twice, Word("aa")));
  // Degenerate forms.
  EXPECT_EQ(Sequence({}, &fac_), fac_.True());
  EXPECT_EQ(Sequence({a_}, &fac_), fac_.Finally(a_));
}

TEST_F(QueryDslTest, NeverAndAlways) {
  EXPECT_TRUE(Evaluate(Never(a_, &fac_), Word("bc")));
  EXPECT_FALSE(Evaluate(Never(a_, &fac_), Word("ba")));
  EXPECT_FALSE(Evaluate(AlwaysHolds(a_, &fac_), Word("a")));  // cycle empty
  EXPECT_TRUE(Evaluate(EventuallyHappens(c_, &fac_), Word("abc")));
}

TEST_F(QueryDslTest, NeverAfterIsStrict) {
  const Formula* f = NeverAfter(b_, a_, &fac_);
  EXPECT_TRUE(Evaluate(f, Word("ba")));   // b before a: fine
  EXPECT_FALSE(Evaluate(f, Word("ab")));  // b strictly after a
  // Simultaneity is not "after".
  LassoWord both;
  Snapshot s(3);
  s.Set(0);
  s.Set(1);
  both.prefix = {s};
  both.cycle = {Snapshot(3)};
  EXPECT_TRUE(Evaluate(f, both));
}

TEST_F(QueryDslTest, PossibleAfterIsStrict) {
  const Formula* f = PossibleAfter(b_, a_, &fac_);
  EXPECT_TRUE(Evaluate(f, Word("ab")));
  EXPECT_FALSE(Evaluate(f, Word("ba")));
  LassoWord both;
  Snapshot s(3);
  s.Set(0);
  s.Set(1);
  both.prefix = {s};
  both.cycle = {Snapshot(3)};
  EXPECT_FALSE(Evaluate(f, both));  // same instant does not count
}

TEST_F(QueryDslTest, RespondsTo) {
  const Formula* f = RespondsTo(b_, a_, &fac_);
  EXPECT_TRUE(Evaluate(f, Word("ab")));
  EXPECT_TRUE(Evaluate(f, Word("..")));    // vacuous
  EXPECT_FALSE(Evaluate(f, Word("ba")));   // second... wait, a unanswered
  EXPECT_TRUE(Evaluate(f, Word("aab")));   // one b answers both
}

TEST_F(QueryDslTest, PrecedesMatchesPaperB) {
  const Formula* f = Precedes(a_, b_, &fac_);
  auto parsed = Parse("a B b", &fac_, &vocab_);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(f, *parsed);
  EXPECT_TRUE(Evaluate(f, Word("ab")));
  EXPECT_FALSE(Evaluate(f, Word("b")));
}

TEST_F(QueryDslTest, AtMostAndExactlyOnce) {
  const Formula* at_most = AtMostOnce(a_, &fac_);
  EXPECT_TRUE(Evaluate(at_most, Word("..")));
  EXPECT_TRUE(Evaluate(at_most, Word(".a.")));
  EXPECT_FALSE(Evaluate(at_most, Word("aa")));
  EXPECT_FALSE(Evaluate(at_most, Word("a.a")));
  const Formula* exactly = ExactlyOnce(a_, &fac_);
  EXPECT_FALSE(Evaluate(exactly, Word("..")));
  EXPECT_TRUE(Evaluate(exactly, Word(".a")));
  EXPECT_FALSE(Evaluate(exactly, Word("a.a")));
}

TEST_F(QueryDslTest, MutuallyExclusive) {
  const Formula* f = MutuallyExclusive({a_, b_, c_}, &fac_);
  EXPECT_TRUE(Evaluate(f, Word("abc")));
  LassoWord overlap;
  Snapshot s(3);
  s.Set(0);
  s.Set(2);
  overlap.prefix = {s};
  overlap.cycle = {Snapshot(3)};
  EXPECT_FALSE(Evaluate(f, overlap));
}

TEST_F(QueryDslTest, TerminalBlocksLaterEvents) {
  const Formula* f = Terminal(c_, {a_, b_, c_}, &fac_);
  EXPECT_TRUE(Evaluate(f, Word("abc")));
  EXPECT_FALSE(Evaluate(f, Word("ca")));
  EXPECT_FALSE(Evaluate(f, Word("cc")));
  EXPECT_TRUE(Evaluate(f, Word("ab")));  // c never happens: vacuous
}

TEST_F(QueryDslTest, BuildsTicketCThroughTheBroker) {
  // Reconstruct Example 5's Ticket C entirely through the DSL and check the
  // paper's verdicts via the broker.
  broker::ContractDatabase db;
  auto* fac = db.factory();
  auto* vocab = db.vocabulary();
  const Formula* purchase = fac->Prop(*vocab->Intern("purchase"));
  const Formula* use = fac->Prop(*vocab->Intern("use"));
  const Formula* miss = fac->Prop(*vocab->Intern("missedFlight"));
  const Formula* refund = fac->Prop(*vocab->Intern("refund"));
  const Formula* change = fac->Prop(*vocab->Intern("dateChange"));
  const std::vector<const Formula*> all = {purchase, use, miss, refund,
                                           change};

  const Formula* ticket_c = fac->AndAll({
      MutuallyExclusive(all, fac),
      AtMostOnce(purchase, fac),
      Precedes(purchase, fac->OrAll({use, miss, refund, change}), fac),
      Terminal(refund, all, fac),
      Terminal(use, all, fac),
      Never(refund, fac),
      AtMostOnce(change, fac),
      NeverAfter(change, miss, fac),
  });
  ASSERT_TRUE(db.RegisterFormula("Ticket C (DSL)", ticket_c).ok());

  auto one_change = db.QueryFormula(Sequence({change}, fac));
  ASSERT_TRUE(one_change.ok());
  EXPECT_EQ(one_change->matches.size(), 1u);

  auto two_changes = db.QueryFormula(Sequence({change, change}, fac));
  ASSERT_TRUE(two_changes.ok());
  EXPECT_TRUE(two_changes->matches.empty());

  auto any_refund = db.QueryFormula(Sequence({refund}, fac));
  ASSERT_TRUE(any_refund.ok());
  EXPECT_TRUE(any_refund->matches.empty());

  auto change_after_miss =
      db.QueryFormula(PossibleAfter(change, miss, fac));
  ASSERT_TRUE(change_after_miss.ok());
  EXPECT_TRUE(change_after_miss->matches.empty());
}

}  // namespace
}  // namespace ctdb::ltl::dsl
