// Property suite for the sharded router (src/shard): a ShardedDatabase over
// any shard count must be observationally identical to the single-database
// oracle — same global ids, same query matches in the same order, same
// error surface — plus the sharding-specific contracts: manifest topology
// checks, cross-shard vocabulary broadcast, Unavailable after Close.

#include "shard/sharded.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "broker/database.h"
#include "broker/durable.h"
#include "shard/manifest.h"
#include "testing/temp_dir.h"
#include "testing/universe.h"
#include "util/file_util.h"
#include "wal/wal.h"

namespace ctdb::shard {
namespace {

using ::ctdb::testing::TempDir;

wal::DurabilityOptions FastOptions() {
  wal::DurabilityOptions options;
  options.fsync_policy = wal::FsyncPolicy::kNever;
  return options;
}

broker::DatabaseOptions ShardOptions(size_t shards) {
  broker::DatabaseOptions options;
  options.shards = shards;
  return options;
}

/// The reproducible universe both sides register from: contract texts drawn
/// once via the workload generator, registered in identical order.
struct Universe {
  std::unique_ptr<broker::ContractDatabase> oracle;
  std::vector<std::string> queries;
};

Universe MakeUniverse(size_t contracts, uint64_t seed, size_t queries = 10) {
  testing::RandomDatabaseSpec spec;
  spec.contracts = contracts;
  spec.contract_patterns = 2;
  spec.vocabulary_size = 12;
  auto generated = testing::RandomDatabase(spec, seed);
  EXPECT_TRUE(generated.ok()) << generated.status().ToString();
  auto q = testing::RandomQueries(generated->get(), 2, queries, seed + 1,
                                  spec.vocabulary_size);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  // The oracle is rebuilt from the contract *texts*, exactly as the sharded
  // side registers them: its vocabulary is the union of cited events, so a
  // query citing an uncited generator event is NotFound on both sides (the
  // generator's database knows p1..pN regardless, which no text-registered
  // database — sharded or not — can reproduce).
  auto oracle = std::make_unique<broker::ContractDatabase>();
  for (uint32_t id = 0; id < generated->get()->size(); ++id) {
    const broker::Contract& c = generated->get()->contract(id);
    auto registered = oracle->Register(c.name, c.ltl_text);
    EXPECT_TRUE(registered.ok()) << registered.status().ToString();
  }
  return Universe{std::move(oracle), std::move(*q)};
}

/// Registers the oracle's contracts, in id order, into `sharded`; expects
/// the striped router to reproduce the oracle's dense ids exactly.
void MirrorRegistrations(const broker::ContractDatabase& oracle,
                         ShardedDatabase* sharded) {
  for (uint32_t id = 0; id < oracle.size(); ++id) {
    const broker::Contract& c = oracle.contract(id);
    auto got = sharded->Register(c.name, c.ltl_text);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(*got, id) << "router must reproduce the oracle's dense ids";
  }
}

void ExpectQueryParity(const broker::ContractDatabase& oracle,
                       const ShardedDatabase& sharded,
                       const std::vector<std::string>& queries) {
  broker::QueryOptions with_witnesses;
  with_witnesses.collect_witnesses = true;
  for (const std::string& query : queries) {
    auto want = oracle.Query(query, with_witnesses);
    auto got = sharded.Query(query, with_witnesses);
    ASSERT_EQ(want.ok(), got.ok()) << query;
    if (!want.ok()) {
      EXPECT_EQ(want.status().code(), got.status().code());
      continue;
    }
    EXPECT_EQ(got->matches, want->matches) << query;
    // Witnesses stay aligned with their matches through the k-way merge;
    // each is a concrete run of the matched contract, so non-degenerate.
    ASSERT_EQ(got->witnesses.size(), got->matches.size());
    for (const LassoWord& w : got->witnesses) {
      EXPECT_FALSE(w.cycle.empty());
    }
    // Per-contract statistics are partition-insensitive: every contract is
    // examined exactly once, on exactly one shard.
    EXPECT_EQ(got->stats.database_size, want->stats.database_size);
    EXPECT_EQ(got->stats.candidates, want->stats.candidates);
    EXPECT_EQ(got->stats.matches, want->stats.matches);
  }
}

TEST(ShardedDatabaseTest, FreshDirectoryCreatesTopology) {
  TempDir dir("sharded");
  auto db = ShardedDatabase::Open(dir.path(), FastOptions(), ShardOptions(4));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->shard_count(), 4u);
  EXPECT_EQ((*db)->size(), 0u);
  EXPECT_EQ((*db)->recovery_stats().per_shard.size(), 4u);

  auto manifest = ReadManifest(dir.path());
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest->shards, 4u);
  ASSERT_EQ(manifest->dirs.size(), 4u);
  EXPECT_EQ(manifest->dirs[0], "shard-000");
  EXPECT_EQ(manifest->dirs[3], "shard-003");
}

TEST(ShardedDatabaseTest, TopologyMismatchIsRejected) {
  TempDir dir("sharded");
  {
    auto db =
        ShardedDatabase::Open(dir.path(), FastOptions(), ShardOptions(4));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto wrong =
      ShardedDatabase::Open(dir.path(), FastOptions(), ShardOptions(2));
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);

  // shards = 0 adopts whatever the manifest records.
  auto adopted =
      ShardedDatabase::Open(dir.path(), FastOptions(), ShardOptions(0));
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_EQ((*adopted)->shard_count(), 4u);
}

TEST(ShardedDatabaseTest, RefusesToShardOverUnshardedData) {
  TempDir dir("sharded");
  {
    auto db = broker::DurableDatabase::Open(dir.path(), FastOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Register("c", "F p1").ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto sharded =
      ShardedDatabase::Open(dir.path(), FastOptions(), ShardOptions(2));
  ASSERT_FALSE(sharded.ok());
  EXPECT_EQ(sharded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedDatabaseTest, CorruptManifestIsRejected) {
  TempDir dir("sharded");
  {
    auto db =
        ShardedDatabase::Open(dir.path(), FastOptions(), ShardOptions(2));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Close().ok());
  }
  ASSERT_TRUE(util::WriteFileAtomic(dir.file(kManifestFileName),
                                    "CTDBSHARDS1\nshards zero\n")
                  .ok());
  auto reopened =
      ShardedDatabase::Open(dir.path(), FastOptions(), ShardOptions(0));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST(ShardedDatabaseTest, QueryParityAcrossShardCounts) {
  const Universe universe = MakeUniverse(/*contracts=*/14, /*seed=*/0xced1);
  for (size_t shards : {1u, 2u, 3u, 4u}) {
    SCOPED_TRACE(shards);
    TempDir dir("sharded");
    auto db = ShardedDatabase::Open(dir.path(), FastOptions(),
                                    ShardOptions(shards));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    MirrorRegistrations(*universe.oracle, db->get());
    EXPECT_EQ((*db)->size(), universe.oracle->size());
    ExpectQueryParity(*universe.oracle, **db, universe.queries);
  }
}

TEST(ShardedDatabaseTest, QueryBatchMatchesPerQueryResults) {
  const Universe universe = MakeUniverse(/*contracts=*/12, /*seed=*/0xba7c);
  TempDir dir("sharded");
  auto db = ShardedDatabase::Open(dir.path(), FastOptions(), ShardOptions(3));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  MirrorRegistrations(*universe.oracle, db->get());

  auto batch = (*db)->QueryBatch(universe.queries);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), universe.queries.size());
  for (size_t i = 0; i < universe.queries.size(); ++i) {
    auto want = universe.oracle->Query(universe.queries[i]);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_EQ((*batch)[i].matches, want->matches) << universe.queries[i];
  }
}

TEST(ShardedDatabaseTest, VocabularyIsBroadcastAcrossShards) {
  TempDir dir("sharded");
  auto db = ShardedDatabase::Open(dir.path(), FastOptions(), ShardOptions(3));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Each registration lands on a different shard, each citing a private
  // event; a query citing all three can only parse if every shard learned
  // the other shards' events.
  ASSERT_TRUE((*db)->Register("a", "F alpha").ok());
  ASSERT_TRUE((*db)->Register("b", "F beta").ok());
  ASSERT_TRUE((*db)->Register("c", "F gamma").ok());
  auto result = (*db)->Query("F alpha & F beta & F gamma");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Error parity for genuinely unknown events survives sharding.
  auto unknown = (*db)->Query("F no_such_event");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(ShardedDatabaseTest, RegisterBatchStripesAndIsAllOrNothing) {
  const Universe universe = MakeUniverse(/*contracts=*/9, /*seed=*/0x5eed);
  TempDir dir("sharded");
  auto db = ShardedDatabase::Open(dir.path(), FastOptions(), ShardOptions(4));
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  std::vector<broker::ContractDatabase::BatchEntry> entries;
  for (uint32_t id = 0; id < universe.oracle->size(); ++id) {
    const broker::Contract& c = universe.oracle->contract(id);
    entries.push_back({c.name, c.ltl_text});
  }
  auto ids = (*db)->RegisterBatch(entries);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  ASSERT_EQ(ids->size(), entries.size());
  for (uint32_t i = 0; i < ids->size(); ++i) EXPECT_EQ((*ids)[i], i);
  ExpectQueryParity(*universe.oracle, **db, universe.queries);

  // A malformed entry anywhere fails the whole batch before any shard
  // commits anything.
  const size_t before = (*db)->size();
  std::vector<broker::ContractDatabase::BatchEntry> bad = {
      {"ok", "F p1"}, {"broken", "F (p1"}, {"also-ok", "F p2"}};
  auto rejected = (*db)->RegisterBatch(bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ((*db)->size(), before);
  for (size_t k = 0; k < (*db)->shard_count(); ++k) {
    EXPECT_LE((*db)->shard(k).size(), (before + 3) / 4 + 1);
  }
}

TEST(ShardedDatabaseTest, EverythingIsUnavailableAfterClose) {
  TempDir dir("sharded");
  auto db = ShardedDatabase::Open(dir.path(), FastOptions(), ShardOptions(2));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Register("c", "F p1").ok());
  ASSERT_TRUE((*db)->Close().ok());
  ASSERT_TRUE((*db)->Close().ok());  // idempotent

  EXPECT_EQ((*db)->Register("late", "F p1").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ((*db)->Query("F p1").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ((*db)->QueryBatch({"F p1"}).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ((*db)->RegisterBatch({{"x", "F p1"}}).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ((*db)->Checkpoint().code(), StatusCode::kUnavailable);
}

TEST(ShardedDatabaseTest, RecoveryPreservesParityAndVocabulary) {
  const Universe universe = MakeUniverse(/*contracts=*/13, /*seed=*/0x4ec0);
  TempDir dir("sharded");
  {
    auto db =
        ShardedDatabase::Open(dir.path(), FastOptions(), ShardOptions(4));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    MirrorRegistrations(*universe.oracle, db->get());
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto db = ShardedDatabase::Open(dir.path(), FastOptions(), ShardOptions(0));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->size(), universe.oracle->size());
  EXPECT_EQ((*db)->recovery_stats().records_replayed,
            universe.oracle->size());
  ExpectQueryParity(*universe.oracle, **db, universe.queries);

  // Registration keeps extending the striped id space after recovery.
  auto next = (*db)->Register("post-recovery", "F p1");
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(*next, universe.oracle->size());
}

TEST(ShardedDatabaseTest, CheckpointFansOutToEveryShard) {
  const Universe universe = MakeUniverse(/*contracts=*/8, /*seed=*/0xcafe);
  TempDir dir("sharded");
  {
    auto db =
        ShardedDatabase::Open(dir.path(), FastOptions(), ShardOptions(2));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    MirrorRegistrations(*universe.oracle, db->get());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  // Every shard holds its own checkpoint image...
  for (size_t k = 0; k < 2; ++k) {
    auto entries = util::ListDir(dir.file(ShardDirName(k)));
    ASSERT_TRUE(entries.ok());
    const bool has_checkpoint =
        std::any_of(entries->begin(), entries->end(), [](const std::string& e) {
          return e.find("checkpoint-") == 0;
        });
    EXPECT_TRUE(has_checkpoint) << ShardDirName(k);
  }
  // ...and recovery from the checkpoints preserves the oracle's answers.
  auto db = ShardedDatabase::Open(dir.path(), FastOptions(), ShardOptions(0));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ExpectQueryParity(*universe.oracle, **db, universe.queries);
}

TEST(ShardedManifestTest, EncodeDecodeRoundTrip) {
  Manifest manifest;
  manifest.shards = 3;
  manifest.dirs = {"shard-000", "shard-001", "shard-002"};
  auto decoded = DecodeManifest(EncodeManifest(manifest));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->shards, manifest.shards);
  EXPECT_EQ(decoded->dirs, manifest.dirs);
}

TEST(ShardedManifestTest, StrictDecodeRejectsDamage) {
  const std::string good =
      EncodeManifest({2, {ShardDirName(0), ShardDirName(1)}});
  EXPECT_FALSE(DecodeManifest("").ok());
  EXPECT_FALSE(DecodeManifest("CTDBSHARDSX\nshards 2\n").ok());
  EXPECT_FALSE(DecodeManifest("CTDBSHARDS1\nshards 0\n").ok());
  EXPECT_FALSE(DecodeManifest("CTDBSHARDS1\nshards 2\ndir shard-000\n").ok());
  EXPECT_FALSE(DecodeManifest(good + "trailing\n").ok());
  EXPECT_FALSE(DecodeManifest(good.substr(0, good.size() - 1)).ok());
  EXPECT_FALSE(
      DecodeManifest("CTDBSHARDS1\nshards 1\ndir ../escape\n").ok());
  for (const auto& text : {good}) {
    EXPECT_TRUE(DecodeManifest(text).ok());
  }
}

TEST(ShardedManifestTest, IdStripingIsABijection) {
  for (size_t shards : {1u, 2u, 5u}) {
    for (uint32_t id = 0; id < 64; ++id) {
      const size_t k = ShardedDatabase::ShardOfId(id, shards);
      const uint32_t local = ShardedDatabase::LocalId(id, shards);
      EXPECT_LT(k, shards);
      EXPECT_EQ(ShardedDatabase::GlobalId(k, local, shards), id);
    }
  }
}

}  // namespace
}  // namespace ctdb::shard
