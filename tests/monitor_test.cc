// Streaming compliance monitor semantics (DESIGN.md §15): finite-trace
// verdicts of the incremental stepper, delta reporting against the open-time
// baseline, alphabet pruning transparency, snapshot isolation of the as_of
// pin across the contract lifecycle, the StreamMonitor registry's error
// surface, and the sharded scatter-gather against the unsharded oracle.

#include "monitor/monitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "broker/database.h"
#include "broker/durable.h"
#include "monitor/session.h"
#include "shard/sharded.h"
#include "testing/temp_dir.h"
#include "wal/wal.h"

namespace ctdb::monitor {
namespace {

using ::ctdb::testing::TempDir;

wal::DurabilityOptions FastOptions() {
  wal::DurabilityOptions options;
  options.fsync_policy = wal::FsyncPolicy::kNever;
  return options;
}

/// Opens a session over the database's current snapshot.
std::unique_ptr<StreamSession> OpenSession(broker::ContractDatabase* db,
                                           StreamOptions options = {}) {
  auto session = StreamSession::Open(db->Snapshot(), options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(*session);
}

StreamVerdict VerdictOf(const StreamCloseInfo& info, uint32_t id) {
  for (const VerdictDelta& v : info.verdicts) {
    if (v.contract_id == id) return v.verdict;
  }
  ADD_FAILURE() << "no verdict for contract " << id;
  return StreamVerdict::kUndetermined;
}

TEST(StreamSessionTest, EventualityBecomesSatisfied) {
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("pay", "F paid").ok());
  auto session = OpenSession(&db);
  EXPECT_EQ(VerdictOf(session->Summary(), 0), StreamVerdict::kUndetermined);

  StreamAppendResult r = session->Append({{"paid"}});
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_EQ(r.deltas[0], (VerdictDelta{0, StreamVerdict::kSatisfied}));

  // "F paid" accepts every extension; later instants change nothing.
  r = session->Append({{}, {"paid"}, {}});
  EXPECT_TRUE(r.deltas.empty());
  EXPECT_EQ(VerdictOf(session->Summary(), 0), StreamVerdict::kSatisfied);
  EXPECT_EQ(session->Summary().events, 4u);
}

TEST(StreamSessionTest, SafetyViolationIsAbsorbing) {
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("safe", "G !breach").ok());
  auto session = OpenSession(&db);
  // The empty prefix of a safety property is accepted.
  EXPECT_EQ(VerdictOf(session->Summary(), 0), StreamVerdict::kSatisfied);

  StreamAppendResult r = session->Append({{"breach"}});
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_EQ(r.deltas[0], (VerdictDelta{0, StreamVerdict::kViolated}));

  // Violated is permanent: the frozen stepper skips whole batches (counted
  // as pruned) and the verdict never moves again.
  r = session->Append({{}, {}, {}});
  EXPECT_TRUE(r.deltas.empty());
  EXPECT_EQ(r.stepped, 0u);
  EXPECT_EQ(r.pruned, 3u);
  EXPECT_EQ(VerdictOf(session->Summary(), 0), StreamVerdict::kViolated);
}

TEST(StreamSessionTest, ResponsePatternFlipsWithObligations) {
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("resp", "G(request -> F grant)").ok());
  auto session = OpenSession(&db);
  // The empty prefix is undetermined — acceptance needs at least one step
  // to reach the obligation-free final state — and one quiet instant
  // (no request) gets there.
  EXPECT_EQ(VerdictOf(session->Summary(), 0), StreamVerdict::kUndetermined);
  session->Append({{}});
  EXPECT_EQ(VerdictOf(session->Summary(), 0), StreamVerdict::kSatisfied);

  // An open obligation suspends acceptance; granting restores it.
  session->Append({{"request"}});
  EXPECT_EQ(VerdictOf(session->Summary(), 0), StreamVerdict::kUndetermined);
  session->Append({{"grant"}});
  EXPECT_EQ(VerdictOf(session->Summary(), 0), StreamVerdict::kSatisfied);
}

TEST(StreamSessionTest, DeltasAreChangesOnlySortedById) {
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("c0", "F paid").ok());
  ASSERT_TRUE(db.Register("c1", "G !breach").ok());
  ASSERT_TRUE(db.Register("c2", "F paid & G !breach").ok());
  auto session = OpenSession(&db);

  // One batch that satisfies c0, violates c1 and c2: all three move, and
  // the deltas arrive in ascending contract-id order.
  const StreamAppendResult r = session->Append({{"paid"}, {"breach"}});
  ASSERT_EQ(r.deltas.size(), 3u);
  EXPECT_EQ(r.deltas[0], (VerdictDelta{0, StreamVerdict::kSatisfied}));
  EXPECT_EQ(r.deltas[1], (VerdictDelta{1, StreamVerdict::kViolated}));
  EXPECT_EQ(r.deltas[2], (VerdictDelta{2, StreamVerdict::kViolated}));

  // No change → no delta, even though two contracts are still stepping.
  EXPECT_TRUE(session->Append({{"paid"}}).deltas.empty());
}

TEST(StreamSessionTest, UnknownEventNamesAreInert) {
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("safe", "G !breach").ok());
  auto session = OpenSession(&db);
  const StreamAppendResult r =
      session->Append({{"warehouse_scan"}, {"audit", "retry"}});
  EXPECT_TRUE(r.deltas.empty());
  EXPECT_EQ(r.events, 2u);
  EXPECT_EQ(VerdictOf(session->Summary(), 0), StreamVerdict::kSatisfied);
}

TEST(StreamSessionTest, PruningIsTransparentAndCounted) {
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("resp", "G(request -> F grant)").ok());
  ASSERT_TRUE(db.Register("pay", "F paid").ok());
  // Interned by no registration path below: a disjoint-alphabet batch.
  const EventBatch mismatched = {{"other"}, {"other"}, {"other"}, {"other"}};
  const EventBatch cited = {{"request"}};

  StreamOptions noprune;
  noprune.prune = false;
  auto pruned = OpenSession(&db);
  auto baseline = OpenSession(&db, noprune);

  const StreamAppendResult a = pruned->Append(mismatched);
  const StreamAppendResult b = baseline->Append(mismatched);
  // Same verdicts either way; the pruned session did strictly less work.
  EXPECT_EQ(pruned->Summary().verdicts, baseline->Summary().verdicts);
  EXPECT_GT(a.pruned, 0u);
  EXPECT_EQ(b.pruned, 0u);
  EXPECT_EQ(a.stepped + a.pruned, b.stepped);

  // A batch citing the contracts' events is never pruned away from them.
  pruned->Append(cited);
  baseline->Append(cited);
  EXPECT_EQ(pruned->Summary().verdicts, baseline->Summary().verdicts);
  EXPECT_EQ(VerdictOf(pruned->Summary(), 0), StreamVerdict::kUndetermined);
}

TEST(StreamSessionTest, AsOfPinsContractVisibility) {
  TempDir dir("monitor");
  auto db = broker::DurableDatabase::Open(dir.path(), FastOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Register("early", "F paid").ok());
  const uint64_t t1 = (*db)->last_sequence();
  ASSERT_TRUE((*db)->Register("late", "G !breach").ok());

  // A historical pin sees one contract, the latest pin two.
  StreamOptions at_t1;
  at_t1.as_of = t1;
  auto old_info = (*db)->StreamOpen("old", at_t1);
  ASSERT_TRUE(old_info.ok()) << old_info.status().ToString();
  EXPECT_EQ(old_info->clock, t1);
  EXPECT_EQ(old_info->tracked, 1u);
  auto new_info = (*db)->StreamOpen("new");
  ASSERT_TRUE(new_info.ok());
  EXPECT_EQ(new_info->tracked, 2u);

  // Mutations after the pin are invisible to both open streams: the
  // unregistered contract keeps stepping inside them.
  ASSERT_TRUE((*db)->Unregister(0).ok());
  auto append = (*db)->StreamAppend("new", {{"paid"}});
  ASSERT_TRUE(append.ok());
  ASSERT_EQ(append->deltas.size(), 1u);
  EXPECT_EQ(append->deltas[0], (VerdictDelta{0, StreamVerdict::kSatisfied}));
  auto closed = (*db)->StreamClose("old");
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed->verdicts.size(), 1u);

  // A fresh latest-pin stream no longer tracks the unregistered contract.
  auto fresh = (*db)->StreamOpen("fresh");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->tracked, 1u);
}

TEST(StreamSessionTest, AsOfBelowRetentionFloorIsInvalidArgument) {
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("c0", "F paid").ok());
  ASSERT_TRUE(db.Unregister(0).ok());
  ASSERT_TRUE(db.Register("c1", "G !breach").ok());
  db.PruneHistory(2);

  StreamOptions below;
  below.as_of = 1;
  auto session = StreamSession::Open(db.Snapshot(), below);
  ASSERT_FALSE(session.ok());
  EXPECT_TRUE(session.status().IsInvalidArgument())
      << session.status().ToString();
}

TEST(StreamSessionTest, AsOfPastLatestClampsLikeQueries) {
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("c0", "F paid").ok());
  StreamOptions future;
  future.as_of = 1000;
  auto session = StreamSession::Open(db.Snapshot(), future);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->clock(), db.Snapshot()->sequence());
  EXPECT_EQ((*session)->tracked(), 1u);
}

TEST(StreamMonitorTest, RegistryErrorSurface) {
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("c0", "F paid").ok());
  StreamMonitor monitor;

  ASSERT_TRUE(monitor.Open("orders", db.Snapshot()).ok());
  EXPECT_EQ(monitor.open_streams(), 1u);
  auto dup = monitor.Open("orders", db.Snapshot());
  ASSERT_FALSE(dup.ok());
  EXPECT_TRUE(dup.status().IsAlreadyExists()) << dup.status().ToString();

  EXPECT_TRUE(monitor.Append("missing", {{"paid"}}).status().IsNotFound());
  EXPECT_TRUE(monitor.Close("missing").status().IsNotFound());

  ASSERT_TRUE(monitor.Append("orders", {{"paid"}}).ok());
  auto summary = monitor.Summary("orders");
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->events, 1u);
  EXPECT_EQ(summary->satisfied, 1u);

  auto closed = monitor.Close("orders");
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed->events, 1u);
  EXPECT_EQ(monitor.open_streams(), 0u);
  // Closing frees the name for reuse.
  EXPECT_TRUE(monitor.Open("orders", db.Snapshot()).ok());
}

TEST(StreamMonitorTest, CloseTalliesMatchVerdicts) {
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("c0", "F paid").ok());
  ASSERT_TRUE(db.Register("c1", "G !breach").ok());
  ASSERT_TRUE(db.Register("c2", "F shipped").ok());
  StreamMonitor monitor;
  ASSERT_TRUE(monitor.Open("s", db.Snapshot()).ok());
  ASSERT_TRUE(monitor.Append("s", {{"paid"}, {"breach"}}).ok());
  auto closed = monitor.Close("s");
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed->verdicts.size(), 3u);
  EXPECT_EQ(closed->satisfied, 1u);     // c0
  EXPECT_EQ(closed->violated, 1u);      // c1
  EXPECT_EQ(closed->undetermined, 1u);  // c2
  EXPECT_EQ(closed->satisfied + closed->violated + closed->undetermined,
            closed->verdicts.size());
}

/// Sharded scatter-gather must be observationally identical to streaming
/// the same contracts through one unsharded database: same global ids,
/// same final verdicts, deltas ascending.
TEST(ShardedStreamTest, MatchesUnshardedOracle) {
  const std::vector<std::pair<std::string, std::string>> contracts = {
      {"c0", "F paid"},
      {"c1", "G !breach"},
      {"c2", "G(request -> F grant)"},
      {"c3", "F shipped & G !cancel"},
      {"c4", "F paid | F refund"},
  };
  const std::vector<EventBatch> batches = {
      {{"request"}, {"paid", "breach"}},
      {{"grant"}, {"cancel"}},
      {{"shipped"}, {}},
  };

  broker::ContractDatabase oracle;
  TempDir dir("monitor");
  broker::DatabaseOptions topology;
  topology.shards = 3;
  auto sharded = shard::ShardedDatabase::Open(dir.path(), FastOptions(),
                                              topology);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  for (const auto& [name, text] : contracts) {
    ASSERT_TRUE(oracle.Register(name, text).ok());
    ASSERT_TRUE((*sharded)->Register(name, text).ok());
  }

  auto oracle_session = OpenSession(&oracle);
  auto info = (*sharded)->StreamOpen("s");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->tracked, contracts.size());

  for (const EventBatch& batch : batches) {
    const StreamAppendResult expected = oracle_session->Append(batch);
    auto got = (*sharded)->StreamAppend("s", batch);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->deltas, expected.deltas);
    EXPECT_EQ(got->events, expected.events);
    EXPECT_TRUE(std::is_sorted(
        got->deltas.begin(), got->deltas.end(),
        [](const VerdictDelta& a, const VerdictDelta& b) {
          return a.contract_id < b.contract_id;
        }));
  }

  const StreamCloseInfo expected = oracle_session->Summary();
  auto closed = (*sharded)->StreamClose("s");
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed->verdicts, expected.verdicts);
  EXPECT_EQ(closed->satisfied, expected.satisfied);
  EXPECT_EQ(closed->violated, expected.violated);
  EXPECT_EQ(closed->undetermined, expected.undetermined);
  EXPECT_EQ(closed->events, expected.events);
}

TEST(ShardedStreamTest, OpenIsAllOrNothing) {
  TempDir dir("monitor");
  broker::DatabaseOptions topology;
  topology.shards = 2;
  auto sharded = shard::ShardedDatabase::Open(dir.path(), FastOptions(),
                                              topology);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ASSERT_TRUE((*sharded)->Register("c0", "F paid").ok());

  ASSERT_TRUE((*sharded)->StreamOpen("s").ok());
  // A duplicate open must fail without leaving a half-open stream behind:
  // the name still answers appends, and a different name still opens.
  EXPECT_TRUE((*sharded)->StreamOpen("s").status().IsAlreadyExists());
  EXPECT_TRUE((*sharded)->StreamAppend("s", {{"paid"}}).ok());
  EXPECT_TRUE((*sharded)->StreamOpen("t").ok());
  EXPECT_TRUE((*sharded)->StreamClose("s").ok());
  EXPECT_TRUE((*sharded)->StreamClose("s").status().IsNotFound());
  EXPECT_TRUE((*sharded)->StreamClose("t").ok());
}

}  // namespace
}  // namespace ctdb::monitor
