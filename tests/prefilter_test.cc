#include "index/prefilter.h"

#include <gtest/gtest.h>

#include "core/compatibility.h"
#include "testing/generators.h"

namespace ctdb::index {
namespace {

using automata::Buchi;
using automata::StateId;

Label L(std::initializer_list<Literal> lits) {
  return Label::FromLiterals(std::vector<Literal>(lits));
}

Bitset Events(std::initializer_list<EventId> events, size_t n = 6) {
  Bitset b(n);
  for (EventId e : events) b.Set(e);
  return b;
}

/// An automaton whose only distinct label is `label` (a `true` loop would
/// expand to every literal combination and defeat the fixtures).
Buchi Single(const Label& label) {
  Buchi ba;
  const StateId s = ba.AddState();
  ba.SetFinal(s);
  ba.AddTransition(0, label, s);
  ba.AddTransition(s, label, s);
  return ba;
}

TEST(PrefilterTest, EmptyIndexLookup) {
  PrefilterIndex index;
  EXPECT_TRUE(index.Lookup(L({{0, false}})).None());
  EXPECT_TRUE(index.universe().None());
  EXPECT_EQ(index.contract_count(), 0u);
}

TEST(PrefilterTest, TrueLabelReturnsUniverse) {
  PrefilterIndex index;
  index.Insert(0, Single(L({{0, false}})), Events({0}));
  index.Insert(1, Single(L({{1, false}})), Events({1}));
  const Bitset all = index.Lookup(Label());
  EXPECT_EQ(all.Count(), 2u);
}

TEST(PrefilterTest, ExactLookupFindsCompatibleContracts) {
  PrefilterIndex index;
  // Contract 0 has a transition refund∧¬use (events {refund=0, use=1}).
  index.Insert(0, Single(L({{0, false}, {1, true}})), Events({0, 1}));
  // Contract 1 has use∧¬refund.
  index.Insert(1, Single(L({{1, false}, {0, true}})), Events({0, 1}));

  EXPECT_EQ(index.Lookup(L({{0, false}})).ToVector(),
            (std::vector<size_t>{0}));
  EXPECT_EQ(index.Lookup(L({{1, false}})).ToVector(),
            (std::vector<size_t>{1}));
  EXPECT_EQ(index.Lookup(L({{0, true}})).ToVector(),
            (std::vector<size_t>{1}));
  // Both literals at once (depth 2).
  EXPECT_EQ(index.Lookup(L({{0, false}, {1, true}})).ToVector(),
            (std::vector<size_t>{0}));
  // No contract has refund ∧ use.
  EXPECT_TRUE(index.Lookup(L({{0, false}, {1, false}})).None());
}

TEST(PrefilterTest, ExpansionCoversUncitedLabelEvents) {
  // Example 11: label refund in a contract citing {refund, dateChange}: a
  // query label refund∧dateChange is compatible (dateChange is unconstrained)
  // and so is refund∧¬dateChange.
  PrefilterIndex index;
  index.Insert(0, Single(L({{0, false}})), Events({0, 4}));
  EXPECT_FALSE(index.Lookup(L({{0, false}, {4, false}})).None());
  EXPECT_FALSE(index.Lookup(L({{0, false}, {4, true}})).None());
  // But refund ∧ ¬refund-conflicting lookups fail:
  EXPECT_TRUE(index.Lookup(L({{0, true}})).None());
}

TEST(PrefilterTest, DeepLookupIntersectsSubsets) {
  PrefilterOptions options;
  options.max_depth = 2;
  PrefilterIndex index(options);
  index.Insert(0, Single(L({{0, false}, {1, false}, {2, false}})),
               Events({0, 1, 2}));
  index.Insert(1, Single(L({{0, false}, {1, false}, {2, true}})),
               Events({0, 1, 2}));
  // |λ| = 3 > k = 2: S'(λ) via intersection still separates the contracts.
  const Bitset hit = index.Lookup(L({{0, false}, {1, false}, {2, false}}));
  EXPECT_EQ(hit.ToVector(), (std::vector<size_t>{0}));
  const Bitset other = index.Lookup(L({{0, false}, {1, false}, {2, true}}));
  EXPECT_EQ(other.ToVector(), (std::vector<size_t>{1}));
  EXPECT_TRUE(
      index.Lookup(L({{0, true}, {1, false}, {2, false}})).None());
}

TEST(PrefilterTest, StatsReflectContent) {
  PrefilterIndex index;
  index.Insert(3, Single(L({{0, false}})), Events({0}));
  const PrefilterStats stats = index.Stats();
  EXPECT_GT(stats.node_count, 0u);
  EXPECT_EQ(stats.contract_count, 1u);
  EXPECT_GT(stats.memory_bytes, 0u);
  EXPECT_TRUE(index.universe().Test(3));
}

/// Soundness property (§4.2): S'(λ) ⊇ S(λ) = every contract with a label
/// compatible with λ — verified against a brute-force scan over random
/// automata and random satisfiable query labels, for several index depths.
class PrefilterSoundnessTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PrefilterSoundnessTest, LookupIsSupersetOfBruteForce) {
  const size_t kEvents = 4;
  PrefilterOptions options;
  options.max_depth = GetParam();
  PrefilterIndex index(options);
  Rng rng(4242 + options.max_depth);

  // Build 40 random single-state automata with random labels.
  struct ContractData {
    Buchi ba;
    Bitset events;
  };
  std::vector<ContractData> contracts;
  for (uint32_t id = 0; id < 40; ++id) {
    ContractData c;
    c.events = Bitset(kEvents);
    Buchi ba;
    const StateId s = ba.AddState();
    ba.SetFinal(s);
    const size_t labels = 1 + rng.Uniform(4);
    for (size_t i = 0; i < labels; ++i) {
      Label label;
      for (EventId e = 0; e < kEvents; ++e) {
        const uint64_t pick = rng.Uniform(3);
        if (pick == 1) {
          label.AddPositive(e);
          c.events.Set(e);
        } else if (pick == 2) {
          label.AddNegative(e);
          c.events.Set(e);
        }
      }
      ba.AddTransition(0, label, s);
    }
    // Cite one extra random event beyond the labels sometimes.
    if (rng.Chance(0.3)) c.events.Set(rng.Uniform(kEvents));
    c.ba = std::move(ba);
    index.Insert(id, c.ba, c.events);
    contracts.push_back(std::move(c));
  }

  for (int trial = 0; trial < 300; ++trial) {
    Label query;
    for (EventId e = 0; e < kEvents; ++e) {
      const uint64_t pick = rng.Uniform(4);
      if (pick == 1) query.AddPositive(e);
      if (pick == 2) query.AddNegative(e);
    }
    const Bitset got = index.Lookup(query);
    for (uint32_t id = 0; id < contracts.size(); ++id) {
      bool compatible = false;
      for (const Label& gamma : contracts[id].ba.DistinctLabels()) {
        if (core::Compatible(gamma, query, contracts[id].events)) {
          compatible = true;
          break;
        }
      }
      if (compatible) {
        EXPECT_TRUE(got.Test(id))
            << "depth " << options.max_depth << " missed contract " << id;
      }
      // Exact depth ≥ |query| must be exact, not just a superset.
      if (query.LiteralCount() <= options.max_depth && !compatible) {
        EXPECT_FALSE(got.Test(id));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, PrefilterSoundnessTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace ctdb::index
