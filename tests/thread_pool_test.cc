// Stress and correctness tests for the shared work-stealing executor:
// many small tasks, nested submits, nested ParallelFor, exception and
// Status propagation, and graceful (draining) shutdown.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace ctdb::util {
namespace {

/// Counts completions and lets the test block until `expected` tasks ran.
class Completion {
 public:
  explicit Completion(size_t expected) : expected_(expected) {}

  void Signal() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    if (done_ >= expected_) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return done_ >= expected_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t expected_;
  size_t done_ = 0;
};

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  const Status status = pool.ParallelFor(0, kN, [&](size_t i) -> Status {
    hits[i].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status;
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHonorsBeginOffset) {
  ThreadPool pool(2);
  std::atomic<size_t> sum{0};
  ASSERT_TRUE(pool.ParallelFor(100, 200, [&](size_t i) -> Status {
                    sum.fetch_add(i);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(sum.load(), (100u + 199u) * 100u / 2u);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.ParallelFor(5, 5, [&](size_t) -> Status {
                    ADD_FAILURE() << "body ran on empty range";
                    return Status::OK();
                  })
                  .ok());
}

TEST(ThreadPoolTest, SubmitManySmallTasks) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 5000;
  std::atomic<size_t> ran{0};
  Completion completion(kTasks);
  for (size_t i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      ran.fetch_add(1);
      completion.Signal();
    });
  }
  completion.Wait();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, NestedSubmitsFromWorkerThreads) {
  // Each root task fans out children from inside the pool; children land on
  // the submitting worker's own deque and get stolen by idle workers.
  ThreadPool pool(3);
  constexpr size_t kRoots = 64;
  constexpr size_t kChildren = 32;
  std::atomic<size_t> ran{0};
  Completion completion(kRoots * (1 + kChildren));
  for (size_t r = 0; r < kRoots; ++r) {
    pool.Submit([&] {
      EXPECT_TRUE(pool.InWorkerThread());
      for (size_t c = 0; c < kChildren; ++c) {
        pool.Submit([&] {
          ran.fetch_add(1);
          completion.Signal();
        });
      }
      ran.fetch_add(1);
      completion.Signal();
    });
  }
  completion.Wait();
  EXPECT_EQ(ran.load(), kRoots * (1 + kChildren));
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // The inner ParallelFor runs from a pool worker while every other worker
  // may be blocked in the same position; the calling thread participates in
  // its own iteration space, so this must complete even on a 1-worker pool.
  for (size_t workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    std::atomic<size_t> total{0};
    const Status status = pool.ParallelFor(0, 8, [&](size_t) -> Status {
      return pool.ParallelFor(0, 64, [&](size_t) -> Status {
        total.fetch_add(1);
        return Status::OK();
      });
    });
    ASSERT_TRUE(status.ok()) << status;
    EXPECT_EQ(total.load(), 8u * 64u) << workers << " workers";
  }
}

TEST(ThreadPoolTest, StatusErrorPropagates) {
  ThreadPool pool(4);
  const Status status = pool.ParallelFor(0, 1000, [&](size_t i) -> Status {
    if (i == 137) return Status::ResourceExhausted("budget hit at 137");
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_NE(status.message().find("137"), std::string::npos);
}

TEST(ThreadPoolTest, ExceptionBecomesInternalStatus) {
  ThreadPool pool(4);
  const Status status = pool.ParallelFor(0, 1000, [&](size_t i) -> Status {
    if (i == 41) throw std::runtime_error("boom at 41");
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInternal());
  EXPECT_NE(status.message().find("boom at 41"), std::string::npos);
}

TEST(ThreadPoolTest, ErrorSkipsRemainingIterations) {
  // After the first failure, unclaimed iterations are skipped — the loop
  // still terminates and reports the first error.
  ThreadPool pool(2);
  std::atomic<size_t> ran{0};
  const Status status = pool.ParallelFor(0, 100000, [&](size_t i) -> Status {
    ran.fetch_add(1);
    if (i == 0) return Status::InvalidArgument("fail fast");
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_LE(ran.load(), 100000u);
}

TEST(ThreadPoolTest, ParallelForUsableFromExternalAndWorkerThreads) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.InWorkerThread());
  std::atomic<bool> saw_worker{false};
  ASSERT_TRUE(pool.ParallelFor(0, 4, [&](size_t) -> Status {
                    if (pool.InWorkerThread()) saw_worker.store(true);
                    return Status::OK();
                  })
                  .ok());
  // With the caller participating, at least the caller ran; with more than
  // one iteration and two workers, workers normally join in, but that is
  // timing-dependent — only assert the call completed.
  SUCCEED();
  (void)saw_worker;
}

TEST(ThreadPoolTest, GracefulShutdownDrainsQueuedTasks) {
  std::atomic<size_t> ran{0};
  constexpr size_t kTasks = 500;
  {
    ThreadPool pool(2);
    for (size_t i = 0; i < kTasks; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
    // Destructor must let the workers drain all queued tasks.
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, StressRepeatedParallelForOnSharedPool) {
  // The broker reuses one pool across many calls; hammer that pattern.
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(pool.ParallelFor(0, 97, [&](size_t) -> Status {
                      total.fetch_add(1);
                      return Status::OK();
                    })
                    .ok());
  }
  EXPECT_EQ(total.load(), 200u * 97u);
}

TEST(ThreadPoolTest, ZeroThreadConstructionClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> x{0};
  ASSERT_TRUE(pool.ParallelFor(0, 10, [&](size_t) -> Status {
                    x.fetch_add(1);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(x.load(), 10);
}

}  // namespace
}  // namespace ctdb::util
