#include "ltl/rewriter.h"

#include <gtest/gtest.h>

#include "ltl/evaluator.h"
#include "ltl/parser.h"
#include "testing/generators.h"

namespace ctdb::ltl {
namespace {

class RewriterTest : public ::testing::Test {
 protected:
  RewriterTest() : vocab_({"p", "q", "r"}) {}
  const Formula* F(const std::string& text) {
    auto r = Parse(text, &fac_, &vocab_);
    EXPECT_TRUE(r.ok()) << r.status();
    return *r;
  }
  Vocabulary vocab_;
  FormulaFactory fac_;
};

TEST_F(RewriterTest, NnfOutputIsNnf) {
  for (const char* text : {
           "!(p & q)", "!(p | q)", "!(p -> q)", "!(p <-> q)", "!X p",
           "!F p", "!G p", "!(p U q)", "!(p W q)", "!(p R q)", "!(p B q)",
           "p B q", "p W q", "F p", "G p",
           "G(p -> X(!F p))",
       }) {
    const Formula* nnf = ToNnf(F(text), &fac_);
    EXPECT_TRUE(IsNnf(nnf)) << text << " -> " << nnf->ToString(vocab_);
  }
}

TEST_F(RewriterTest, NnfKnownForms) {
  EXPECT_EQ(ToNnf(F("!(p & q)"), &fac_), F("!p | !q"));
  EXPECT_EQ(ToNnf(F("!(p U q)"), &fac_), ToNnf(F("!p R !q"), &fac_));
  EXPECT_EQ(ToNnf(F("!X p"), &fac_), ToNnf(F("X !p"), &fac_));
  EXPECT_EQ(ToNnf(F("p -> q"), &fac_), F("!p | q"));
  // B via the paper identity: p B q = p R !q.
  EXPECT_EQ(ToNnf(F("p B q"), &fac_), F("p R !q"));
  EXPECT_EQ(ToNnf(F("!!p"), &fac_), F("p"));
}

TEST_F(RewriterTest, NnfPreservesSemantics) {
  Rng rng(424242);
  for (int trial = 0; trial < 300; ++trial) {
    const Formula* f = ctdb::testing::RandomFormula(&rng, &fac_, 3, 3);
    const Formula* nnf = ToNnf(f, &fac_);
    ASSERT_TRUE(IsNnf(nnf)) << f->ToString(vocab_);
    const LassoWord w = ctdb::testing::RandomWord(&rng, 3, 3, 3);
    EXPECT_EQ(Evaluate(f, w), Evaluate(nnf, w))
        << f->ToString(vocab_) << " vs " << nnf->ToString(vocab_);
  }
}

TEST_F(RewriterTest, SimplifyKnownRules) {
  // F(p U q) -> F q.
  const Formula* f = ToNnf(F("F(p U q)"), &fac_);
  EXPECT_EQ(SimplifyNnf(f, &fac_), ToNnf(F("F q"), &fac_));
  // G(p R q) -> G q.
  const Formula* g = ToNnf(F("G(p R q)"), &fac_);
  EXPECT_EQ(SimplifyNnf(g, &fac_), ToNnf(F("G q"), &fac_));
  // X p & X q -> X(p & q).
  const Formula* x = ToNnf(F("X p & X q"), &fac_);
  EXPECT_EQ(SimplifyNnf(x, &fac_), ToNnf(F("X(p & q)"), &fac_));
  // (p U r) | (q U r) stays; (r U p) | (r U q) -> r U (p | q).
  const Formula* u = ToNnf(F("(r U p) | (r U q)"), &fac_);
  EXPECT_EQ(SimplifyNnf(u, &fac_), ToNnf(F("r U (p | q)"), &fac_));
}

TEST_F(RewriterTest, SimplifyPreservesSemantics) {
  Rng rng(55555);
  for (int trial = 0; trial < 300; ++trial) {
    const Formula* f = ctdb::testing::RandomFormula(&rng, &fac_, 3, 3);
    const Formula* norm = Normalize(f, &fac_);
    ASSERT_TRUE(IsNnf(norm)) << f->ToString(vocab_);
    const LassoWord w = ctdb::testing::RandomWord(&rng, 3, 3, 3);
    EXPECT_EQ(Evaluate(f, w), Evaluate(norm, w))
        << f->ToString(vocab_) << " vs " << norm->ToString(vocab_);
  }
}

TEST_F(RewriterTest, SimplifyNeverGrows) {
  Rng rng(777);
  for (int trial = 0; trial < 100; ++trial) {
    const Formula* f = ctdb::testing::RandomFormula(&rng, &fac_, 3, 4);
    const Formula* nnf = ToNnf(f, &fac_);
    const Formula* simplified = SimplifyNnf(nnf, &fac_);
    EXPECT_LE(simplified->Size(), nnf->Size());
  }
}

}  // namespace
}  // namespace ctdb::ltl
