#include "workload/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "automata/ops.h"
#include "ltl/parser.h"
#include "workload/events.h"
#include "workload/spec.h"

namespace ctdb::workload {
namespace {

TEST(GeneratorTest, DeterministicForEqualSeeds) {
  GeneratorOptions options;
  options.properties = 3;
  Vocabulary v1;
  ltl::FormulaFactory f1;
  SpecGenerator g1(options, 42, &v1, &f1);
  Vocabulary v2;
  ltl::FormulaFactory f2;
  SpecGenerator g2(options, 42, &v2, &f2);
  for (int i = 0; i < 5; ++i) {
    auto a = g1.Next();
    auto b = g2.Next();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->text, b->text);
  }
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentSpecs) {
  GeneratorOptions options;
  options.properties = 3;
  Vocabulary v;
  ltl::FormulaFactory f;
  SpecGenerator g1(options, 1, &v, &f);
  SpecGenerator g2(options, 2, &v, &f);
  auto a = g1.Next();
  auto b = g2.Next();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->text, b->text);
}

TEST(GeneratorTest, VocabularyInterned) {
  GeneratorOptions options;
  options.vocabulary_size = 7;
  Vocabulary v;
  ltl::FormulaFactory f;
  SpecGenerator g(options, 3, &v, &f);
  EXPECT_EQ(v.size(), 7u);
  EXPECT_TRUE(v.Contains("p1"));
  EXPECT_TRUE(v.Contains("p7"));
  EXPECT_FALSE(v.Contains("p8"));
}

TEST(GeneratorTest, SpecsAreNonDegenerate) {
  GeneratorOptions options;
  options.properties = 5;
  Vocabulary v;
  ltl::FormulaFactory f;
  SpecGenerator g(options, 7, &v, &f);
  for (int i = 0; i < 10; ++i) {
    auto spec = g.Next();
    ASSERT_TRUE(spec.ok()) << spec.status();
    EXPECT_FALSE(automata::IsEmptyLanguage(spec->automaton));
    EXPECT_GT(spec->automaton.StateCount(), 1u);
    EXPECT_FALSE(spec->text.empty());
    EXPECT_NE(spec->formula, nullptr);
  }
}

TEST(GeneratorTest, DrawPropertyUsesDistinctEventsWithinPattern) {
  GeneratorOptions options;
  Vocabulary v;
  ltl::FormulaFactory f;
  SpecGenerator g(options, 11, &v, &f);
  for (int i = 0; i < 50; ++i) {
    const ltl::Formula* prop = g.DrawProperty();
    ASSERT_NE(prop, nullptr);
    Bitset events;
    prop->CollectEvents(&events);
    EXPECT_GE(events.Count(), 1u);
    EXPECT_LE(events.Count(), 4u);
  }
}

TEST(GeneratorTest, PropertyTextParsesBack) {
  GeneratorOptions options;
  options.properties = 4;
  Vocabulary v;
  ltl::FormulaFactory f;
  SpecGenerator g(options, 13, &v, &f);
  auto spec = g.Next();
  ASSERT_TRUE(spec.ok());
  auto reparsed = ltl::Parse(spec->text, &f, &v);
  ASSERT_TRUE(reparsed.ok()) << spec->text;
  EXPECT_EQ(*reparsed, spec->formula);
}

TEST(DatasetTest, PaperDatasetsMatchTable2Sizes) {
  const auto datasets = PaperDatasets();
  ASSERT_EQ(datasets.size(), 6u);
  EXPECT_EQ(datasets[0].name, "Simple contracts");
  EXPECT_EQ(datasets[0].size, 3000u);
  EXPECT_EQ(datasets[0].patterns, 5u);
  EXPECT_FALSE(datasets[0].is_query);
  EXPECT_EQ(datasets[1].size, 1000u);
  EXPECT_EQ(datasets[1].patterns, 6u);
  EXPECT_EQ(datasets[2].patterns, 7u);
  EXPECT_EQ(datasets[3].size, 100u);
  EXPECT_EQ(datasets[3].patterns, 1u);
  EXPECT_TRUE(datasets[3].is_query);
  EXPECT_EQ(datasets[5].patterns, 3u);
}

TEST(DatasetTest, ScaledDatasetsRoundUp) {
  const auto scaled = ScaledDatasets(0.01);
  EXPECT_EQ(scaled[0].size, 30u);   // 3000 * 0.01
  EXPECT_EQ(scaled[3].size, 1u);    // 100 * 0.01 → ceil
}

TEST(DatasetTest, GenerateDatasetProducesRequestedCount) {
  auto datasets = ScaledDatasets(0.003);  // 9 simple contracts, 1 query each
  Vocabulary v;
  ltl::FormulaFactory f;
  auto specs = GenerateDataset(datasets[0], &v, &f);
  ASSERT_TRUE(specs.ok()) << specs.status();
  EXPECT_EQ(specs->size(), datasets[0].size);
  std::set<std::string> distinct;
  for (const auto& s : *specs) distinct.insert(s.text);
  EXPECT_GT(distinct.size(), 1u);
}

TEST(EventWorkloadTest, EventSpecsDeterministicForEqualSeeds) {
  GeneratorOptions options;
  options.properties = 2;
  Vocabulary v1;
  ltl::FormulaFactory f1;
  EventSpecGenerator g1(options, 42, &v1, &f1);
  Vocabulary v2;
  ltl::FormulaFactory f2;
  EventSpecGenerator g2(options, 42, &v2, &f2);
  for (int i = 0; i < 5; ++i) {
    auto a = g1.Next();
    auto b = g2.Next();
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->text, b->text);
  }
}

TEST(EventWorkloadTest, EventSpecsAreSatisfiableAndParseBack) {
  GeneratorOptions options;
  options.properties = 2;
  Vocabulary v;
  ltl::FormulaFactory f;
  EventSpecGenerator g(options, 7, &v, &f);
  for (int i = 0; i < 8; ++i) {
    auto spec = g.Next();
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    // Next() redraws degenerate conjunctions: the BA has a model.
    EXPECT_FALSE(automata::IsEmptyLanguage(spec->automaton)) << spec->text;
    auto reparsed = ltl::Parse(spec->text, &f, &v);
    ASSERT_TRUE(reparsed.ok()) << spec->text;
  }
}

TEST(EventWorkloadTest, TracesDeterministicAndBounded) {
  TraceOptions options;
  options.vocabulary_size = 9;
  options.max_events_per_instant = 3;
  TraceGenerator g1(options, 5);
  TraceGenerator g2(options, 5);
  const monitor::EventBatch a = g1.NextBatch(64);
  const monitor::EventBatch b = g2.NextBatch(64);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 64u);
  for (const std::vector<std::string>& instant : a) {
    EXPECT_LE(instant.size(), options.max_events_per_instant);
    std::set<std::string> distinct(instant.begin(), instant.end());
    EXPECT_EQ(distinct.size(), instant.size());  // no duplicate names
    for (const std::string& name : instant) {
      EXPECT_EQ(name.rfind("p", 0), 0u) << name;
    }
  }
}

TEST(EventWorkloadTest, TracePrefixMakesMismatchedVocabularies) {
  TraceOptions options;
  options.prefix = "z";
  TraceGenerator g(options, 11);
  // Collect until a nonempty instant shows up; every drawn name must carry
  // the foreign prefix, so such a stream shares no event with "p"-contracts.
  bool saw_event = false;
  for (int i = 0; i < 64 && !saw_event; ++i) {
    for (const std::string& name : g.NextInstant()) {
      saw_event = true;
      EXPECT_EQ(name.rfind("z", 0), 0u) << name;
    }
  }
  EXPECT_TRUE(saw_event);
}

}  // namespace
}  // namespace ctdb::workload
