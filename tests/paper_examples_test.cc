// End-to-end encodings of the paper's running examples (Examples 2-10,
// Figures 1-3) through the public broker API.

#include <gtest/gtest.h>

#include "broker/database.h"

namespace ctdb::broker {
namespace {

// Common clauses C0-C5 of Example 5.
const char* kCommon =
    "G(purchase -> !use & !missedFlight & !refund & !dateChange) &"
    "G(use -> !purchase & !missedFlight & !refund & !dateChange) &"
    "G(missedFlight -> !purchase & !use & !refund & !dateChange) &"
    "G(refund -> !purchase & !use & !missedFlight & !dateChange) &"
    "G(dateChange -> !purchase & !use & !missedFlight & !refund) &"
    "G(purchase -> X(!F purchase)) &"
    "(purchase B (use | missedFlight | refund | dateChange)) &"
    "G((missedFlight -> !F use) W dateChange) &"
    "G(refund -> X(!F(use | missedFlight | refund | dateChange))) &"
    "G(use -> X(!F(use | missedFlight | refund | dateChange)))";

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Example 5's LTL encodings of the three tickets.
    ASSERT_TRUE(db_.Register("TicketA",
                             std::string(kCommon) +
                                 " & G(dateChange -> !F refund)")
                    .ok());
    ASSERT_TRUE(db_.Register("TicketB",
                             std::string(kCommon) +
                                 " & G(missedFlight -> !F dateChange)")
                    .ok());
    ASSERT_TRUE(db_.Register("TicketC",
                             std::string(kCommon) + " & G(!refund)" +
                                 " & G(dateChange -> X(!F dateChange))" +
                                 " & G(missedFlight -> !F dateChange)")
                    .ok());
    // Example 4 adds classUpgrade to the common vocabulary (no contract
    // cites it).
    ASSERT_TRUE(db_.InternEvent("classUpgrade").ok());
  }

  std::vector<uint32_t> Matches(const std::string& query) {
    auto r = db_.Query(query);
    EXPECT_TRUE(r.ok()) << r.status();
    // Cross-check: the unoptimized scan returns the same result.
    QueryOptions unopt;
    unopt.use_prefilter = false;
    unopt.use_projections = false;
    auto r2 = db_.Query(query, unopt);
    EXPECT_TRUE(r2.ok());
    EXPECT_EQ(r->matches, r2->matches) << query;
    return r->matches;
  }

  ContractDatabase db_;
  static constexpr uint32_t kTicketA = 0;
  static constexpr uint32_t kTicketB = 1;
  static constexpr uint32_t kTicketC = 2;
};

// §1 / Example 2: "allows a partial ticket refund or a date change after the
// first leg has been missed" → Tickets A and B, not C.
TEST_F(PaperExamplesTest, Example2HeadlineQuery) {
  EXPECT_EQ(Matches("F(missedFlight & F(refund | dateChange))"),
            (std::vector<uint32_t>{kTicketA, kTicketB}));
}

// Figure 1b: a refund after a missed flight.
TEST_F(PaperExamplesTest, Figure1bRefundAfterMiss) {
  const auto m = Matches("F(missedFlight & F refund)");
  EXPECT_EQ(m, (std::vector<uint32_t>{kTicketA, kTicketB}));
}

// Example 4 (Q2): class upgrade after a date change — nobody cites
// classUpgrade, so the refined permission semantics returns nothing.
TEST_F(PaperExamplesTest, Example4Q2Underspecified) {
  EXPECT_TRUE(Matches("F(dateChange & F classUpgrade)").empty());
}

// §2.1 Q3: after a date change, a class upgrade OR a refund. Ticket B
// explicitly allows refunds after date changes → returned despite not
// specifying class upgrades. Ticket A forbids refunds after changes;
// Ticket C forbids refunds entirely.
TEST_F(PaperExamplesTest, Q3DisjunctionRescuedByRefund) {
  EXPECT_EQ(Matches("F(dateChange & F(classUpgrade | refund))"),
            (std::vector<uint32_t>{kTicketB}));
}

// Example 3's behaviors: a plain reschedule, and use on the original date.
TEST_F(PaperExamplesTest, Example3BasicSequences) {
  EXPECT_EQ(Matches("F(purchase & F use)"),
            (std::vector<uint32_t>{kTicketA, kTicketB, kTicketC}));
  EXPECT_EQ(Matches("F(purchase & F(dateChange & F use))"),
            (std::vector<uint32_t>{kTicketA, kTicketB, kTicketC}));
}

// Ticket C allows only one date change (Example 2, clause 2).
TEST_F(PaperExamplesTest, TicketCSingleChange) {
  EXPECT_EQ(Matches("F(dateChange & X F dateChange)"),
            (std::vector<uint32_t>{kTicketA, kTicketB}));
}

// Ticket A's clause: no refunds after date changes.
TEST_F(PaperExamplesTest, NoRefundAfterChangeOnTicketA) {
  EXPECT_EQ(Matches("F(dateChange & F refund)"),
            (std::vector<uint32_t>{kTicketB}));
}

// Every ticket permits a refund-before-anything-else (C4 allows it; C
// forbids refunds).
TEST_F(PaperExamplesTest, PlainRefund) {
  EXPECT_EQ(Matches("F refund"), (std::vector<uint32_t>{kTicketA, kTicketB}));
}

// Example 10's prefilter behavior: for the Figure 1b query, contract C is
// pruned before the permission algorithm runs (it has no refund label
// reachable — actually it cites refund via G(!refund)... the paper's Figure 3
// index prunes C because its BA has no transition compatible with `refund`).
TEST_F(PaperExamplesTest, Example10PrefilterPrunesTicketC) {
  auto r = db_.Query("F(missedFlight & F refund)");
  ASSERT_TRUE(r.ok());
  // Candidates must include all matches and exclude Ticket C.
  EXPECT_LE(r->stats.candidates, 2u);
  EXPECT_EQ(r->matches, (std::vector<uint32_t>{kTicketA, kTicketB}));
}

// Only Ticket A allows rescheduling after a missed flight (B and C both
// carry G(missedFlight -> !F dateChange)).
TEST_F(PaperExamplesTest, RescheduleAfterMissOnlyOnTicketA) {
  EXPECT_EQ(Matches("F(missedFlight & F dateChange)"),
            (std::vector<uint32_t>{kTicketA}));
}

// C3 as written in Example 5 makes a missed ticket unusable from the miss
// instant on (the ¬F use reaches beyond any later reschedule), so no ticket
// permits use strictly after a miss.
TEST_F(PaperExamplesTest, NoUseAfterMissUnderC3) {
  EXPECT_TRUE(Matches("F(missedFlight & F use)").empty());
  EXPECT_TRUE(Matches("F(missedFlight & (!dateChange U use))").empty());
}

}  // namespace
}  // namespace ctdb::broker
