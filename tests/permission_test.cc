#include "core/permission.h"

#include <gtest/gtest.h>

#include "core/compatibility.h"
#include "ltl/parser.h"
#include "translate/ltl_to_ba.h"

namespace ctdb::core {
namespace {

using automata::Buchi;
using automata::StateId;

Label L(std::initializer_list<Literal> lits) {
  return Label::FromLiterals(std::vector<Literal>(lits));
}

TEST(CompatibilityTest, Definition7Point3) {
  Bitset contract_events(4);
  contract_events.Set(0);
  contract_events.Set(1);

  // Query citing only contract events and not conflicting: compatible.
  EXPECT_TRUE(Compatible(L({{0, false}}), L({{1, false}}), contract_events));
  // Conflict: contract has !e1, query asks e1.
  EXPECT_FALSE(Compatible(L({{1, true}}), L({{1, false}}), contract_events));
  // Query cites an event outside the contract: incompatible even if
  // non-conflicting.
  EXPECT_FALSE(Compatible(L({{0, false}}), L({{2, false}}), contract_events));
  EXPECT_FALSE(Compatible(Label(), L({{2, true}}), contract_events));
  // True query label is compatible with anything.
  EXPECT_TRUE(Compatible(L({{0, false}, {1, true}}), Label(),
                         contract_events));
}

class PermissionFixture : public ::testing::Test {
 protected:
  PermissionFixture()
      : vocab_({"purchase", "use", "missedFlight", "refund", "dateChange",
                "classUpgrade"}) {}

  Buchi BA(const std::string& text) {
    auto f = ltl::Parse(text, &fac_, &vocab_);
    EXPECT_TRUE(f.ok()) << f.status();
    auto ba = translate::LtlToBuchi(*f, &fac_);
    EXPECT_TRUE(ba.ok()) << ba.status();
    return std::move(*ba);
  }

  Bitset EventsOf(const std::string& text) {
    auto f = ltl::Parse(text, &fac_, &vocab_);
    EXPECT_TRUE(f.ok());
    Bitset events;
    (*f)->CollectEvents(&events);
    return events;
  }

  /// Checks permission with every algorithm/seed combination and asserts they
  /// agree before returning the verdict.
  bool CheckAll(const std::string& contract, const std::string& query) {
    const Buchi c = BA(contract);
    const Buchi q = BA(query);
    const Bitset events = EventsOf(contract);
    const Bitset seeds = ComputeSeedStates(c);

    PermissionOptions nested;
    nested.algorithm = PermissionAlgorithm::kNestedDfs;
    nested.use_seeds = false;
    const bool r1 = Permits(c, events, q, nested);

    nested.use_seeds = true;
    const bool r2 = Permits(c, events, q, nested, &seeds);

    PermissionOptions scc;
    scc.algorithm = PermissionAlgorithm::kScc;
    const bool r3 = Permits(c, events, q, scc);

    EXPECT_EQ(r1, r2) << contract << " | " << query;
    EXPECT_EQ(r1, r3) << contract << " | " << query;
    return r1;
  }

  Vocabulary vocab_;
  ltl::FormulaFactory fac_;
};

// The common clauses C0-C5 of Example 5 (single-trip flight lifecycle).
const char* kCommonClauses =
    "G(purchase -> !use & !missedFlight & !refund & !dateChange) &"
    "G(use -> !purchase & !missedFlight & !refund & !dateChange) &"
    "G(missedFlight -> !purchase & !use & !refund & !dateChange) &"
    "G(refund -> !purchase & !use & !missedFlight & !dateChange) &"
    "G(dateChange -> !purchase & !use & !missedFlight & !refund) &"
    "G(purchase -> X(!F purchase)) &"
    "(purchase B (use | missedFlight | refund | dateChange)) &"
    "G((missedFlight -> !F use) W dateChange) &"
    "G(refund -> X(!F(use | missedFlight | refund | dateChange))) &"
    "G(use -> X(!F(use | missedFlight | refund | dateChange)))";

std::string TicketA() {
  return std::string(kCommonClauses) + " & G(dateChange -> !F refund)";
}
std::string TicketB() {
  return std::string(kCommonClauses) + " & G(missedFlight -> !F dateChange)";
}
std::string TicketC() {
  return std::string(kCommonClauses) +
         " & G(!refund)"
         " & G(dateChange -> X(!F dateChange))"
         " & G(missedFlight -> !F dateChange)";
}

TEST_F(PermissionFixture, TicketsPermitTheirOwnBasicLifecycle) {
  // Every ticket allows: purchase then use.
  const char* lifecycle = "F(purchase & F use)";
  EXPECT_TRUE(CheckAll(TicketA(), lifecycle));
  EXPECT_TRUE(CheckAll(TicketB(), lifecycle));
  EXPECT_TRUE(CheckAll(TicketC(), lifecycle));
}

// Example 2 / §1: "allows a refund or a date change after the first leg has
// been missed" — Tickets A and B qualify, Ticket C does not.
TEST_F(PermissionFixture, Example2HeadlineQuery) {
  const char* query = "F(missedFlight & F(refund | dateChange))";
  EXPECT_TRUE(CheckAll(TicketA(), query));
  EXPECT_TRUE(CheckAll(TicketB(), query));
  EXPECT_FALSE(CheckAll(TicketC(), query));
}

// Figure 1b's query: a refund after a missed flight. Ticket A allows it
// (refunds are only forbidden after date changes); Ticket C forbids refunds.
TEST_F(PermissionFixture, Figure1bQuery) {
  const char* query = "F(missedFlight & F refund)";
  EXPECT_TRUE(CheckAll(TicketA(), query));
  EXPECT_FALSE(CheckAll(TicketC(), query));
}

// Example 4: Ticket A never cites classUpgrade, so a query about class
// upgrades after date changes must NOT be permitted (the refined semantics).
TEST_F(PermissionFixture, Example4UnderspecifiedContractsExcluded) {
  const char* q2 = "F(dateChange & F classUpgrade)";
  EXPECT_FALSE(CheckAll(TicketA(), q2));
}

// Q3 of §2.1: "after a date change, allows a class upgrade OR a refund".
// Ticket B explicitly allows refunds after date changes, so despite not
// specifying class upgrades it is returned.
TEST_F(PermissionFixture, Q3DisjunctionSavedByCitedEvent) {
  const char* q3 = "F(dateChange & F(classUpgrade | refund))";
  EXPECT_TRUE(CheckAll(TicketB(), q3));
  EXPECT_FALSE(CheckAll(TicketC(), q3));  // no refunds at all
}

TEST_F(PermissionFixture, TicketARefusesRefundAfterChange) {
  EXPECT_FALSE(CheckAll(TicketA(), "F(dateChange & F refund)"));
  // But refund before any date change is fine.
  EXPECT_TRUE(CheckAll(TicketA(), "F refund"));
}

TEST_F(PermissionFixture, TicketBForbidsChangeAfterMiss) {
  EXPECT_FALSE(CheckAll(TicketB(), "F(missedFlight & F dateChange)"));
  EXPECT_TRUE(CheckAll(TicketB(), "F(dateChange & F missedFlight)"));
}

TEST_F(PermissionFixture, TicketCAllowsExactlyOneChange) {
  EXPECT_TRUE(CheckAll(TicketC(), "F dateChange"));
  EXPECT_FALSE(CheckAll(TicketC(), "F(dateChange & X F dateChange)"));
  EXPECT_FALSE(CheckAll(TicketC(), "F refund"));
}

// Theorem 6's reduction direction: permission of `true` ⇔ satisfiability of
// the contract.
TEST_F(PermissionFixture, PermissionOfTrueIsSatisfiability) {
  EXPECT_TRUE(CheckAll(TicketA(), "true"));
  EXPECT_FALSE(CheckAll("G(purchase) & G(!purchase)", "true"));
}

TEST_F(PermissionFixture, UnsatisfiableQueryPermittedByNothing) {
  EXPECT_FALSE(CheckAll(TicketA(), "F(purchase & refund & use)"));
  EXPECT_FALSE(CheckAll(TicketA(), "false"));
}

TEST_F(PermissionFixture, StatsAreReported) {
  const Buchi c = BA(TicketA());
  const Buchi q = BA("F(missedFlight & F refund)");
  const Bitset events = EventsOf(TicketA());
  PermissionStats stats;
  Permits(c, events, q, {}, nullptr, &stats);
  EXPECT_GT(stats.pairs_visited, 0u);
}

TEST_F(PermissionFixture, SeedStatesMatchDefinition) {
  // init -> a(final) -> b(loop, not final): a is not on a cycle, b's cycle
  // has no final state, so no seeds at all.
  Buchi ba;
  const StateId a = ba.AddState();
  const StateId b = ba.AddState();
  ba.SetFinal(a);
  ba.AddTransition(0, Label(), a);
  ba.AddTransition(a, Label(), b);
  ba.AddTransition(b, Label(), b);
  EXPECT_TRUE(ComputeSeedStates(ba).None());

  // Close the loop back to a: now a and b both sit on a final cycle.
  ba.AddTransition(b, Label(), a);
  const Bitset seeds = ComputeSeedStates(ba);
  EXPECT_TRUE(seeds.Test(a));
  EXPECT_TRUE(seeds.Test(b));
  EXPECT_FALSE(seeds.Test(0));
}

}  // namespace
}  // namespace ctdb::core
