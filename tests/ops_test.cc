#include "automata/ops.h"

#include <gtest/gtest.h>

#include "automata/word.h"
#include "testing/generators.h"

namespace ctdb::automata {
namespace {

Label L(std::initializer_list<Literal> lits) {
  return Label::FromLiterals(std::vector<Literal>(lits));
}

/// init -> a -> b(final, loop); c unreachable; d reachable dead-end.
Buchi MakeFixture() {
  Buchi ba;
  const StateId a = ba.AddState();
  const StateId b = ba.AddState();
  const StateId c = ba.AddState();
  const StateId d = ba.AddState();
  ba.SetFinal(b);
  ba.AddTransition(0, L({{0, false}}), a);
  ba.AddTransition(a, L({{1, false}}), b);
  ba.AddTransition(b, Label(), b);
  ba.AddTransition(c, Label(), b);   // c unreachable
  ba.AddTransition(a, Label(), d);   // d dead end
  return ba;
}

TEST(OpsTest, ReachableStates) {
  const Buchi ba = MakeFixture();
  const Bitset reachable = ReachableStates(ba);
  EXPECT_TRUE(reachable.Test(0));
  EXPECT_TRUE(reachable.Test(1));
  EXPECT_TRUE(reachable.Test(2));
  EXPECT_FALSE(reachable.Test(3));  // c
  EXPECT_TRUE(reachable.Test(4));   // d reachable (though dead)
}

TEST(OpsTest, PruneDeadStatesDropsDeadAndUnreachable) {
  const Buchi ba = MakeFixture();
  std::vector<StateId> map;
  const Buchi pruned = PruneDeadStates(ba, &map);
  EXPECT_EQ(pruned.StateCount(), 3u);  // init, a, b
  EXPECT_EQ(map[3], kDroppedState);
  EXPECT_EQ(map[4], kDroppedState);
  EXPECT_NE(map[0], kDroppedState);
  EXPECT_EQ(pruned.TransitionCount(), 3u);
  EXPECT_EQ(pruned.FinalCount(), 1u);
  EXPECT_TRUE(pruned.Validate().ok());
}

TEST(OpsTest, PruneKeepsInitialEvenWhenDead) {
  Buchi ba;  // single non-final state, no transitions: empty language
  const Buchi pruned = PruneDeadStates(ba);
  EXPECT_EQ(pruned.StateCount(), 1u);
  EXPECT_TRUE(IsEmptyLanguage(pruned));
}

TEST(OpsTest, PruneDropsFinalWithoutCycle) {
  Buchi ba;
  const StateId fin = ba.AddState();
  ba.SetFinal(fin);
  ba.AddTransition(0, Label(), fin);
  // Final state has no cycle: language empty, everything but init pruned.
  const Buchi pruned = PruneDeadStates(ba);
  EXPECT_EQ(pruned.StateCount(), 1u);
  EXPECT_EQ(pruned.TransitionCount(), 0u);
}

TEST(OpsTest, IsEmptyLanguage) {
  EXPECT_TRUE(IsEmptyLanguage(Buchi()));
  Buchi accepting;
  accepting.SetFinal(0);
  accepting.AddTransition(0, Label(), 0);
  EXPECT_FALSE(IsEmptyLanguage(accepting));

  // Final cycle unreachable from init.
  Buchi unreachable;
  const StateId island = unreachable.AddState();
  unreachable.SetFinal(island);
  unreachable.AddTransition(island, Label(), island);
  EXPECT_TRUE(IsEmptyLanguage(unreachable));

  // Reachable cycle without final.
  Buchi no_final;
  no_final.AddTransition(0, Label(), 0);
  EXPECT_TRUE(IsEmptyLanguage(no_final));
}

TEST(OpsTest, ProjectLabelsDropsLiterals) {
  Buchi ba;
  const StateId s1 = ba.AddState();
  ba.SetFinal(s1);
  ba.AddTransition(0, L({{0, false}, {1, true}}), s1);
  ba.AddTransition(s1, L({{1, true}}), s1);
  Bitset keep(2);
  keep.Set(1);
  const Buchi projected = ProjectLabels(ba, keep, keep);
  ASSERT_EQ(projected.Out(0).size(), 1u);
  const Label& label = projected.Out(0)[0].label;
  EXPECT_FALSE(label.Contains(Literal{0, false}));
  EXPECT_TRUE(label.Contains(Literal{1, true}));
  EXPECT_TRUE(projected.IsFinal(s1));
  EXPECT_EQ(projected.initial(), ba.initial());
}

/// Property: pruning dead states never changes the accepted language.
TEST(OpsTest, PruneDeadStatesPreservesLanguageOnRandomAutomata) {
  Rng rng(0x9055);
  const size_t kEvents = 3;
  for (int trial = 0; trial < 80; ++trial) {
    Buchi ba;
    const size_t n = 2 + rng.Uniform(7);
    ba.AddStates(n - 1);
    for (size_t s = 0; s < n; ++s) {
      if (rng.Chance(0.3)) ba.SetFinal(static_cast<StateId>(s));
      const size_t out = rng.Uniform(3);
      for (size_t t = 0; t < out; ++t) {
        Label label;
        for (EventId e = 0; e < kEvents; ++e) {
          const uint64_t pick = rng.Uniform(4);
          if (pick == 1) label.AddPositive(e);
          if (pick == 2) label.AddNegative(e);
        }
        ba.AddTransition(static_cast<StateId>(s), label,
                         static_cast<StateId>(rng.Uniform(n)));
      }
    }
    const Buchi pruned = PruneDeadStates(ba);
    EXPECT_LE(pruned.StateCount(), ba.StateCount());
    EXPECT_EQ(IsEmptyLanguage(ba), IsEmptyLanguage(pruned));
    for (int w = 0; w < 15; ++w) {
      const LassoWord word = ctdb::testing::RandomWord(&rng, kEvents, 3, 3);
      ASSERT_EQ(AcceptsWord(ba, word), AcceptsWord(pruned, word))
          << "trial " << trial;
    }
  }
}

/// Property: projecting labels onto everything is the identity (up to
/// transition dedup), and onto nothing yields a superset language.
TEST(OpsTest, ProjectionLanguageMonotonicity) {
  Rng rng(0xF170);
  const size_t kEvents = 3;
  Bitset all(kEvents);
  all.SetAll();
  Bitset none(kEvents);
  for (int trial = 0; trial < 50; ++trial) {
    Buchi ba;
    const size_t n = 2 + rng.Uniform(5);
    ba.AddStates(n - 1);
    for (size_t s = 0; s < n; ++s) {
      if (rng.Chance(0.4)) ba.SetFinal(static_cast<StateId>(s));
      for (size_t t = 0; t < 2; ++t) {
        Label label;
        for (EventId e = 0; e < kEvents; ++e) {
          const uint64_t pick = rng.Uniform(3);
          if (pick == 1) label.AddPositive(e);
          if (pick == 2) label.AddNegative(e);
        }
        ba.AddTransition(static_cast<StateId>(s), label,
                         static_cast<StateId>(rng.Uniform(n)));
      }
    }
    const Buchi identity = ProjectLabels(ba, all, all);
    const Buchi relaxed = ProjectLabels(ba, none, none);
    for (int w = 0; w < 10; ++w) {
      const LassoWord word = ctdb::testing::RandomWord(&rng, kEvents, 2, 3);
      const bool original = AcceptsWord(ba, word);
      EXPECT_EQ(original, AcceptsWord(identity, word));
      // Dropping literals only relaxes transition guards.
      if (original) EXPECT_TRUE(AcceptsWord(relaxed, word));
    }
  }
}

TEST(OpsTest, ProjectLabelsDedupsCollapsedTransitions) {
  Buchi ba;
  const StateId s1 = ba.AddState();
  ba.AddTransition(0, L({{0, false}}), s1);
  ba.AddTransition(0, L({{0, true}}), s1);
  Bitset none(1);
  const Buchi projected = ProjectLabels(ba, none, none);
  // Both labels become `true`: deduplicated to one transition.
  EXPECT_EQ(projected.Out(0).size(), 1u);
  EXPECT_TRUE(projected.Out(0)[0].label.IsTrue());
}

}  // namespace
}  // namespace ctdb::automata
