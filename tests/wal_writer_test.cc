// Tests for the group-commit log writer: durability of acknowledged
// appends, ordering, rotation (by size and on request), every fsync policy,
// concurrent appenders sharing groups, and checkpoint-driven segment
// deletion. Runs under TSan in CI (the `Wal` filter) — the concurrency
// tests here are the data-race canary for the writer thread.

#include "wal/writer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "testing/temp_dir.h"
#include "util/file_util.h"
#include "wal/record.h"
#include "wal/segment.h"
#include "wal/wal.h"

namespace ctdb::wal {
namespace {

using ::ctdb::testing::TempDir;

/// Reads and parses every segment in `dir` in index order, concatenating
/// their records.
std::vector<Record> ReadLog(const std::string& dir) {
  auto names = util::ListDir(dir);
  EXPECT_TRUE(names.ok()) << names.status().ToString();
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : *names) {
    uint64_t index = 0;
    if (ParseSegmentFileName(name, &index)) segments.emplace_back(index, name);
  }
  std::sort(segments.begin(), segments.end());
  std::vector<Record> records;
  for (const auto& [index, name] : segments) {
    auto data = util::ReadFileToString(dir + "/" + name);
    EXPECT_TRUE(data.ok()) << data.status().ToString();
    ParsedSegment parsed;
    const Status status = ParseSegment(*data, &parsed);
    EXPECT_TRUE(status.ok()) << name << ": " << status.ToString();
    records.insert(records.end(), parsed.records.begin(),
                   parsed.records.end());
  }
  return records;
}

/// The writer never interprets record contents; the tests only need
/// distinct, mutation-typed frames, so clock == sequence and contract_id ==
/// sequence keeps the fixtures terse.
Record Reg(uint64_t seq, std::string name, std::string ltl) {
  return Record::Register(seq, seq, static_cast<uint32_t>(seq),
                          std::move(name), std::move(ltl));
}

DurabilityOptions FastOptions(FsyncPolicy policy) {
  DurabilityOptions options;
  options.fsync_policy = policy;
  options.group_commit_window = std::chrono::microseconds(100);
  return options;
}

TEST(WalWriterTest, AppendReadBackRoundTrip) {
  for (const FsyncPolicy policy :
       {FsyncPolicy::kAlways, FsyncPolicy::kGroup, FsyncPolicy::kNever}) {
    TempDir dir("walwriter");
    auto writer = LogWriter::Open(dir.path(), 1, FastOptions(policy));
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    std::vector<Record> written;
    for (uint64_t seq = 1; seq <= 20; ++seq) {
      written.push_back(
          Reg(seq, "c" + std::to_string(seq), "F p"));
      ASSERT_TRUE((*writer)->Append(written.back()).ok())
          << FsyncPolicyName(policy);
    }
    ASSERT_TRUE((*writer)->Close().ok());
    EXPECT_EQ(ReadLog(dir.path()), written) << FsyncPolicyName(policy);
  }
}

TEST(WalWriterTest, AcknowledgedAppendIsOnDiskBeforeClose) {
  // Durability must not depend on Close: once Append returns Ok the record
  // parses out of the segment file even while the writer is still open.
  TempDir dir("walwriter");
  auto writer = LogWriter::Open(dir.path(), 1, FastOptions(FsyncPolicy::kAlways));
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  const Record record = Reg(1, "c", "F p");
  ASSERT_TRUE((*writer)->Append(record).ok());
  const std::vector<Record> on_disk = ReadLog(dir.path());
  ASSERT_EQ(on_disk.size(), 1u);
  EXPECT_EQ(on_disk[0], record);
}

TEST(WalWriterTest, ConcurrentAppendersAllDurableInSequenceOrder) {
  TempDir dir("walwriter");
  auto writer = LogWriter::Open(dir.path(), 1, FastOptions(FsyncPolicy::kGroup));
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  // Mimic the broker: a shared counter assigns sequences and the enqueue
  // happens in sequence order (the broker holds its append mutex across
  // apply+enqueue; here the atomic fetch_add inside AppendAsync's caller
  // loop is raced, so we only check the SET, not the order).
  std::atomic<uint64_t> next{1};
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t seq = next.fetch_add(1);
        const Status status = (*writer)->Append(
            Reg(seq, "c" + std::to_string(seq), "F p"));
        if (!status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE((*writer)->Close().ok());

  std::vector<Record> records = ReadLog(dir.path());
  ASSERT_EQ(records.size(), static_cast<size_t>(kThreads * kPerThread));
  std::vector<bool> seen(kThreads * kPerThread + 1, false);
  for (const Record& r : records) {
    ASSERT_GE(r.sequence, 1u);
    ASSERT_LE(r.sequence, static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_FALSE(seen[r.sequence]) << "sequence " << r.sequence << " twice";
    seen[r.sequence] = true;
  }
}

TEST(WalWriterTest, RotatesWhenSegmentExceedsSizeThreshold) {
  TempDir dir("walwriter");
  DurabilityOptions options = FastOptions(FsyncPolicy::kNever);
  options.segment_bytes = 256;
  auto writer = LogWriter::Open(dir.path(), 1, options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  std::vector<Record> written;
  for (uint64_t seq = 1; seq <= 40; ++seq) {
    written.push_back(Reg(seq, "contract-" + std::to_string(seq),
                                       "G(p -> F q)"));
    ASSERT_TRUE((*writer)->Append(written.back()).ok());
  }
  EXPECT_GT((*writer)->current_segment_index(), 1u);
  ASSERT_TRUE((*writer)->Close().ok());

  auto names = util::ListDir(dir.path());
  ASSERT_TRUE(names.ok());
  size_t segment_files = 0;
  for (const std::string& name : *names) {
    uint64_t index = 0;
    if (ParseSegmentFileName(name, &index)) ++segment_files;
  }
  EXPECT_GT(segment_files, 1u);
  // Rotation must not lose or reorder anything.
  EXPECT_EQ(ReadLog(dir.path()), written);
}

TEST(WalWriterTest, ExplicitRotationSealsSegment) {
  TempDir dir("walwriter");
  auto writer = LogWriter::Open(dir.path(), 5, FastOptions(FsyncPolicy::kNever));
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Append(Reg(1, "a", "F p")).ok());
  EXPECT_EQ((*writer)->current_segment_index(), 5u);
  ASSERT_TRUE((*writer)->RotateSegment().ok());
  EXPECT_EQ((*writer)->current_segment_index(), 6u);

  const auto sealed = (*writer)->SealedSegments();
  ASSERT_EQ(sealed.size(), 1u);
  EXPECT_EQ(sealed[0].index, 5u);
  EXPECT_EQ(sealed[0].max_sequence, 1u);

  ASSERT_TRUE((*writer)->Append(Reg(2, "b", "F q")).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  const std::vector<Record> records = ReadLog(dir.path());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sequence, 1u);
  EXPECT_EQ(records[1].sequence, 2u);
}

TEST(WalWriterTest, DeleteSegmentsCoveredByRemovesOnlyCoveredFiles) {
  TempDir dir("walwriter");
  auto writer = LogWriter::Open(dir.path(), 1, FastOptions(FsyncPolicy::kNever));
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Append(Reg(1, "a", "F p")).ok());
  ASSERT_TRUE((*writer)->Append(Reg(2, "b", "F q")).ok());
  ASSERT_TRUE((*writer)->RotateSegment().ok());
  ASSERT_TRUE((*writer)->Append(Reg(3, "c", "F r")).ok());
  ASSERT_TRUE((*writer)->RotateSegment().ok());

  // Covered by sequence 2: segment 1 (max seq 2) but not segment 2 (seq 3).
  ASSERT_TRUE((*writer)->DeleteSegmentsCoveredBy(2).ok());
  auto gone = util::ReadFileToString(dir.file(SegmentFileName(1)));
  EXPECT_TRUE(gone.status().IsNotFound());
  auto kept = util::ReadFileToString(dir.file(SegmentFileName(2)));
  EXPECT_TRUE(kept.ok());

  ASSERT_TRUE((*writer)->Close().ok());
  const std::vector<Record> records = ReadLog(dir.path());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, 3u);
}

TEST(WalWriterTest, AppendAfterCloseFails) {
  TempDir dir("walwriter");
  auto writer = LogWriter::Open(dir.path(), 1, FastOptions(FsyncPolicy::kNever));
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_FALSE((*writer)->Append(Reg(1, "a", "F p")).ok());
  EXPECT_FALSE((*writer)->RotateSegment().ok());
  // Close is idempotent.
  EXPECT_TRUE((*writer)->Close().ok());
}

TEST(WalWriterTest, RefusesToClobberExistingSegment) {
  TempDir dir("walwriter");
  ASSERT_TRUE(util::WriteFileAtomic(dir.file(SegmentFileName(1)), "junk").ok());
  auto writer = LogWriter::Open(dir.path(), 1, FastOptions(FsyncPolicy::kNever));
  EXPECT_FALSE(writer.ok());
  // The pre-existing file is untouched.
  auto data = util::ReadFileToString(dir.file(SegmentFileName(1)));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "junk");
}

TEST(WalWriterTest, TracksBytesSinceCheckpoint) {
  TempDir dir("walwriter");
  auto writer = LogWriter::Open(dir.path(), 1, FastOptions(FsyncPolicy::kNever));
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_EQ((*writer)->bytes_since_checkpoint(), 0u);
  ASSERT_TRUE((*writer)->Append(Reg(1, "a", "F p")).ok());
  EXPECT_GT((*writer)->bytes_since_checkpoint(), 0u);
  (*writer)->ResetBytesSinceCheckpoint();
  EXPECT_EQ((*writer)->bytes_since_checkpoint(), 0u);
  ASSERT_TRUE((*writer)->Close().ok());
}

TEST(WalWriterTest, AsyncAppendsShareOneGroup) {
  // Enqueue a burst without waiting, then wait for all: with a group window
  // the batch should land in far fewer groups than records (not asserted on
  // a metric — just that every future resolves Ok and the log is complete).
  TempDir dir("walwriter");
  auto writer = LogWriter::Open(dir.path(), 1, FastOptions(FsyncPolicy::kGroup));
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  std::vector<std::future<Status>> futures;
  futures.reserve(100);
  for (uint64_t seq = 1; seq <= 100; ++seq) {
    futures.push_back((*writer)->AppendAsync(
        Reg(seq, "c" + std::to_string(seq), "F p")));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_EQ(ReadLog(dir.path()).size(), 100u);
}

}  // namespace
}  // namespace ctdb::wal
