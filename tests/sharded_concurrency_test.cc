// Race-hunting suite for the sharded router, run under ThreadSanitizer in
// CI (ci.yml's tsan job): concurrent registering writers, scatter-gather
// readers and checkpointers against one ShardedDatabase. Assertions are
// deliberately coarse — monotonic sizes, well-formed results, no duplicate
// global ids — because the interesting output is TSan's, not gtest's.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "shard/sharded.h"
#include "testing/temp_dir.h"
#include "wal/wal.h"

namespace ctdb::shard {
namespace {

using ::ctdb::testing::TempDir;

wal::DurabilityOptions FastOptions() {
  wal::DurabilityOptions options;
  options.fsync_policy = wal::FsyncPolicy::kNever;
  return options;
}

std::unique_ptr<ShardedDatabase> OpenOrDie(const std::string& dir,
                                           size_t shards) {
  broker::DatabaseOptions options;
  options.shards = shards;
  auto db = ShardedDatabase::Open(dir, FastOptions(), options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

std::string NthLtl(int i) {
  switch (i % 3) {
    case 0: return "F pay";
    case 1: return "G(request -> F grant)";
    default: return "pay U deliver";
  }
}

TEST(ShardedConcurrencyTest, ConcurrentRegistersAssignUniqueGlobalIds) {
  TempDir dir("sharded_tsan");
  auto db = OpenOrDie(dir.path(), 4);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 12;

  std::vector<std::vector<uint32_t>> ids(kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        auto id = db->Register(
            "w" + std::to_string(w) + "-" + std::to_string(i), NthLtl(i));
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        ids[w].push_back(*id);
      }
    });
  }
  for (auto& t : writers) t.join();

  std::set<uint32_t> unique;
  for (const auto& per_writer : ids) {
    unique.insert(per_writer.begin(), per_writer.end());
  }
  EXPECT_EQ(unique.size(), static_cast<size_t>(kWriters * kPerWriter));
  EXPECT_EQ(db->size(), unique.size());
  // Dense: concurrent routing must not leave holes in the striped space.
  EXPECT_EQ(*unique.rbegin(), unique.size() - 1);
}

TEST(ShardedConcurrencyTest, ReadersWritersAndCheckpointersInterleave) {
  TempDir dir("sharded_tsan");
  auto db = OpenOrDie(dir.path(), 2);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(db->Register("seed" + std::to_string(i), NthLtl(i)).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> queries_ok{0};

  std::thread writer([&] {
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(db->Register("w" + std::to_string(i), NthLtl(i)).ok());
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto result = db->Query("F pay");
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        // Snapshot isolation per shard: a result never exceeds the total.
        ASSERT_LE(result->matches.size(), db->size());
        queries_ok.fetch_add(1, std::memory_order_relaxed);
        auto batch = db->QueryBatch({"F pay", "pay U deliver"});
        ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      }
    });
  }
  std::thread checkpointer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(db->Checkpoint().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  writer.join();
  for (auto& t : readers) t.join();
  checkpointer.join();

  EXPECT_EQ(db->size(), 36u);
  EXPECT_GT(queries_ok.load(), 0);
}

TEST(ShardedConcurrencyTest, CloseRacesWithReaders) {
  TempDir dir("sharded_tsan");
  auto db = OpenOrDie(dir.path(), 2);
  ASSERT_TRUE(db->Register("c", "F pay").ok());

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto result = db->Query("F pay");
        // Either a real answer (before the close lands) or a clean
        // Unavailable — never a crash, never a torn result.
        if (!result.ok()) {
          ASSERT_EQ(result.status().code(), StatusCode::kUnavailable);
        }
      }
    });
  }
  std::thread closer([&] { ASSERT_TRUE(db->Close().ok()); });
  for (auto& t : readers) t.join();
  closer.join();
  EXPECT_EQ(db->Query("F pay").status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace ctdb::shard
