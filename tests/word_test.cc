#include "automata/word.h"

#include <gtest/gtest.h>

namespace ctdb::automata {
namespace {

Label L(std::initializer_list<Literal> lits) {
  return Label::FromLiterals(std::vector<Literal>(lits));
}

Snapshot Snap(std::initializer_list<EventId> events, size_t n = 4) {
  Snapshot s(n);
  for (EventId e : events) s.Set(e);
  return s;
}

/// The query BA of Figure 1b: refund after a missed flight.
/// init --missedFlight--> s1 --refund--> s2(final, true-loop); init and s1
/// carry true self-loops. Events: 0 = missedFlight, 1 = refund.
Buchi Figure1b() {
  Buchi ba;
  const StateId s1 = ba.AddState();
  const StateId s2 = ba.AddState();
  ba.SetFinal(s2);
  ba.AddTransition(0, Label(), 0);
  ba.AddTransition(0, L({{0, false}}), s1);
  ba.AddTransition(s1, Label(), s1);
  ba.AddTransition(s1, L({{1, false}}), s2);
  ba.AddTransition(s2, Label(), s2);
  return ba;
}

TEST(WordTest, Figure1bAcceptsMissThenRefund) {
  const Buchi ba = Figure1b();
  LassoWord w;
  w.prefix = {Snap({0}), Snap({1})};
  w.cycle = {Snap({})};
  EXPECT_TRUE(AcceptsWord(ba, w));
}

TEST(WordTest, Figure1bRejectsRefundOnly) {
  const Buchi ba = Figure1b();
  LassoWord w;
  w.prefix = {Snap({1})};
  w.cycle = {Snap({})};
  EXPECT_FALSE(AcceptsWord(ba, w));
}

TEST(WordTest, Figure1bRejectsRefundBeforeMiss) {
  const Buchi ba = Figure1b();
  LassoWord w;
  w.prefix = {Snap({1}), Snap({0})};
  w.cycle = {Snap({})};
  EXPECT_FALSE(AcceptsWord(ba, w));
}

TEST(WordTest, Figure1bAcceptsEventsInsideCycle) {
  const Buchi ba = Figure1b();
  LassoWord w;
  w.cycle = {Snap({0}), Snap({1})};  // miss, refund, miss, refund, ...
  EXPECT_TRUE(AcceptsWord(ba, w));
}

TEST(WordTest, EmptyAutomatonRejectsEverything) {
  Buchi ba;  // no final, no transitions
  LassoWord w;
  w.cycle = {Snap({})};
  EXPECT_FALSE(AcceptsWord(ba, w));
}

TEST(WordTest, TrueLoopFinalAcceptsEverything) {
  Buchi ba;
  ba.SetFinal(0);
  ba.AddTransition(0, Label(), 0);
  LassoWord w;
  w.prefix = {Snap({0}), Snap({1, 2})};
  w.cycle = {Snap({3}), Snap({})};
  EXPECT_TRUE(AcceptsWord(ba, w));
}

TEST(WordTest, FinalOnPrefixOnlyIsNotAccepting) {
  // final state is traversed once but the run then leaves it forever.
  Buchi ba;
  const StateId fin = ba.AddState();
  const StateId sink = ba.AddState();
  ba.SetFinal(fin);
  ba.AddTransition(0, Label(), fin);
  ba.AddTransition(fin, Label(), sink);
  ba.AddTransition(sink, Label(), sink);
  LassoWord w;
  w.cycle = {Snap({})};
  EXPECT_FALSE(AcceptsWord(ba, w));
}

TEST(WordTest, NegativeLiteralBlocksTransition) {
  Buchi ba;
  const StateId fin = ba.AddState();
  ba.SetFinal(fin);
  ba.AddTransition(0, L({{0, true}}), fin);  // requires !e0
  ba.AddTransition(fin, Label(), fin);
  LassoWord with_e0;
  with_e0.prefix = {Snap({0})};
  with_e0.cycle = {Snap({})};
  EXPECT_FALSE(AcceptsWord(ba, with_e0));
  LassoWord without;
  without.prefix = {Snap({})};
  without.cycle = {Snap({})};
  EXPECT_TRUE(AcceptsWord(ba, without));
}

TEST(WordTest, CycleMustSatisfyLabelsEveryIteration) {
  // Final loop requires e0 in every snapshot of the cycle.
  Buchi ba;
  ba.SetFinal(0);
  ba.AddTransition(0, L({{0, false}}), 0);
  LassoWord alternating;
  alternating.cycle = {Snap({0}), Snap({})};
  EXPECT_FALSE(AcceptsWord(ba, alternating));
  LassoWord constant;
  constant.cycle = {Snap({0})};
  EXPECT_TRUE(AcceptsWord(ba, constant));
}

}  // namespace
}  // namespace ctdb::automata
