// In-process integration tests for the network service (net/server.h):
// a real server on an ephemeral port over a real DurableDatabase, real
// sockets, concurrent mixed-operation clients, pipelining, graceful drain,
// and restart recovery — everything acked over the wire must be present
// after the server and database are reopened.

#include "net/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "broker/durable.h"
#include "shard/sharded.h"
#include "net/client.h"
#include "net/protocol.h"
#include "testing/temp_dir.h"
#include "wal/wal.h"

namespace ctdb::net {
namespace {

using ::ctdb::broker::DurableDatabase;
using ::ctdb::testing::TempDir;

wal::DurabilityOptions FastDurability() {
  wal::DurabilityOptions options;
  options.fsync_policy = wal::FsyncPolicy::kNever;  // tests survive exit()
  return options;
}

std::string NthLtl(int i) {
  switch (i % 3) {
    case 0: return "F pay";
    case 1: return "G(request -> F grant)";
    default: return "pay U deliver";
  }
}

/// A database + server pair on an ephemeral port.
struct Harness {
  explicit Harness(const std::string& dir, ServerOptions options = {}) {
    auto opened = DurableDatabase::Open(dir, FastDurability());
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    db = std::move(*opened);
    auto started = Server::Start(db.get(), options);
    EXPECT_TRUE(started.ok()) << started.status().ToString();
    server = std::move(*started);
  }
  ~Harness() {
    if (server != nullptr) {
      EXPECT_TRUE(server->Shutdown().ok());
    }
    if (db != nullptr) {
      EXPECT_TRUE(db->Close().ok());
    }
  }
  std::unique_ptr<Client> Connect() {
    auto client = Client::Connect("127.0.0.1", server->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }
  std::unique_ptr<DurableDatabase> db;
  std::unique_ptr<Server> server;
};

TEST(ServerIntegrationTest, AllSixOperationsRoundTrip) {
  TempDir dir("net");
  Harness harness(dir.path());
  auto client = harness.Connect();

  auto reg = client->Call(Request::Register(1, "alpha", "F pay"));
  ASSERT_TRUE(reg.ok()) << reg.status().ToString();
  ASSERT_TRUE(reg->status().ok()) << reg->message;
  EXPECT_EQ(reg->id, 1u);
  EXPECT_EQ(reg->request_kind, MsgKind::kRegister);
  ASSERT_EQ(reg->ids.size(), 1u);
  EXPECT_EQ(reg->ids[0], 0u);

  auto batch = client->Call(Request::RegisterBatch(
      2, {{"beta", "G(request -> F grant)"}, {"gamma", "pay U deliver"}}));
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(batch->status().ok()) << batch->message;
  EXPECT_EQ(batch->ids, (std::vector<uint32_t>{1, 2}));

  auto query = client->Call(Request::Query(3, "F pay"));
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(query->status().ok()) << query->message;
  ASSERT_EQ(query->answers.size(), 1u);
  // "F pay" permits at least the identical contract "alpha".
  EXPECT_NE(std::find(query->answers[0].matches.begin(),
                      query->answers[0].matches.end(), 0u),
            query->answers[0].matches.end());

  auto query_batch =
      client->Call(Request::QueryBatch(4, {"F pay", "F deliver"}));
  ASSERT_TRUE(query_batch.ok());
  ASSERT_TRUE(query_batch->status().ok()) << query_batch->message;
  EXPECT_EQ(query_batch->answers.size(), 2u);

  auto checkpoint = client->Call(Request::Checkpoint(5));
  ASSERT_TRUE(checkpoint.ok());
  ASSERT_TRUE(checkpoint->status().ok()) << checkpoint->message;
  EXPECT_EQ(checkpoint->sequence, 3u);  // three registrations acked

  auto stats = client->Call(Request::Stats(6));
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->status().ok()) << stats->message;
  EXPECT_NE(stats->stats_json.find("broker.registrations"),
            std::string::npos);
}

TEST(ServerIntegrationTest, LifecycleOperationsAndTimeTravelRoundTrip) {
  TempDir dir("net");
  Harness harness(dir.path());
  auto client = harness.Connect();

  ASSERT_TRUE(client->Call(Request::Register(1, "a", "F pay"))->status().ok());
  ASSERT_TRUE(client->Call(Request::Register(2, "b", "F pay"))->status().ok());

  auto gone = client->Call(Request::Unregister(3, 0));
  ASSERT_TRUE(gone.ok()) << gone.status().ToString();
  ASSERT_TRUE(gone->status().ok()) << gone->message;
  EXPECT_EQ(gone->request_kind, MsgKind::kUnregister);
  EXPECT_EQ(gone->sequence, 3u);  // third mutation's clock

  auto swapped = client->Call(Request::Replace(4, 1, "G !pay"));
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  ASSERT_TRUE(swapped->status().ok()) << swapped->message;
  EXPECT_EQ(swapped->request_kind, MsgKind::kReplace);
  EXPECT_EQ(swapped->sequence, 4u);

  // Latest: "F pay" matches nothing; time travel to before the lifecycle
  // ops sees both originals.
  auto latest = client->Call(Request::Query(5, "F pay"));
  ASSERT_TRUE(latest.ok());
  ASSERT_TRUE(latest->status().ok()) << latest->message;
  EXPECT_TRUE(latest->answers[0].matches.empty());
  auto historic = client->Call(Request::Query(6, "F pay", /*as_of=*/2));
  ASSERT_TRUE(historic.ok());
  ASSERT_TRUE(historic->status().ok()) << historic->message;
  EXPECT_EQ(historic->answers[0].matches, (std::vector<uint32_t>{0, 1}));
  auto batch = client->Call(
      Request::QueryBatch(7, {"F pay", "G !pay"}, /*as_of=*/3));
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(batch->status().ok()) << batch->message;
  ASSERT_EQ(batch->answers.size(), 2u);
  EXPECT_EQ(batch->answers[0].matches, (std::vector<uint32_t>{1}));
  EXPECT_TRUE(batch->answers[1].matches.empty());

  // Lifecycle errors come back as responses, not hangups.
  auto dead = client->Call(Request::Unregister(8, 0));
  ASSERT_TRUE(dead.ok());
  EXPECT_TRUE(dead->status().IsNotFound());
  auto missing = client->Call(Request::Replace(9, 42, "F pay"));
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->status().IsNotFound());
}

TEST(ServerIntegrationTest, StreamOperationsRoundTrip) {
  TempDir dir("net");
  Harness harness(dir.path());
  auto client = harness.Connect();

  ASSERT_TRUE(client->Call(Request::Register(1, "pay", "F paid"))
                  ->status().ok());
  ASSERT_TRUE(client->Call(Request::Register(2, "safe", "G !breach"))
                  ->status().ok());

  auto opened = client->Call(Request::StreamOpen(3, "orders"));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_TRUE(opened->status().ok()) << opened->message;
  EXPECT_EQ(opened->request_kind, MsgKind::kStreamOpen);
  EXPECT_EQ(opened->sequence, 2u);  // pinned at the second mutation's clock
  EXPECT_EQ(opened->tracked, 2u);

  // A duplicate open and appends to unknown streams come back as error
  // responses, not hangups.
  auto dup = client->Call(Request::StreamOpen(4, "orders"));
  ASSERT_TRUE(dup.ok());
  EXPECT_TRUE(dup->status().IsAlreadyExists());
  auto missing = client->Call(Request::StreamAppend(5, "ghost", {{"paid"}}));
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->status().IsNotFound());

  auto append = client->Call(
      Request::StreamAppend(6, "orders", {{"paid"}, {"breach"}}));
  ASSERT_TRUE(append.ok()) << append.status().ToString();
  ASSERT_TRUE(append->status().ok()) << append->message;
  EXPECT_EQ(append->request_kind, MsgKind::kStreamAppend);
  EXPECT_EQ(append->events, 2u);
  EXPECT_GT(append->stepped, 0u);
  ASSERT_EQ(append->verdicts.size(), 2u);
  EXPECT_EQ(append->verdicts[0].contract_id, 0u);
  EXPECT_EQ(append->verdicts[0].verdict, monitor::StreamVerdict::kSatisfied);
  EXPECT_EQ(append->verdicts[1].contract_id, 1u);
  EXPECT_EQ(append->verdicts[1].verdict, monitor::StreamVerdict::kViolated);

  auto closed = client->Call(Request::StreamClose(7, "orders"));
  ASSERT_TRUE(closed.ok()) << closed.status().ToString();
  ASSERT_TRUE(closed->status().ok()) << closed->message;
  EXPECT_EQ(closed->request_kind, MsgKind::kStreamClose);
  EXPECT_EQ(closed->events, 2u);
  EXPECT_EQ(closed->satisfied, 1u);
  EXPECT_EQ(closed->violated, 1u);
  EXPECT_EQ(closed->undetermined, 0u);
  EXPECT_EQ(closed->verdicts.size(), 2u);
  // Closed means closed: the name is gone, then free for reuse.
  EXPECT_TRUE(client->Call(Request::StreamClose(8, "orders"))
                  ->status().IsNotFound());
  EXPECT_TRUE(client->Call(Request::StreamOpen(9, "orders"))->status().ok());
}

TEST(ServerIntegrationTest, ShardedStreamOverTheWire) {
  TempDir dir("net");
  broker::DatabaseOptions topology;
  topology.shards = 2;
  auto sharded =
      shard::ShardedDatabase::Open(dir.path(), FastDurability(), topology);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  auto started = Server::Start(sharded->get());
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  auto client = Client::Connect("127.0.0.1", (*started)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  for (int c = 0; c < 4; ++c) {
    ASSERT_TRUE((*client)
                    ->Call(Request::Register(static_cast<uint64_t>(c + 1),
                                             "c" + std::to_string(c),
                                             c % 2 ? "G !breach" : "F paid"))
                    ->status().ok());
  }
  auto opened = (*client)->Call(Request::StreamOpen(5, "s"));
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened->status().ok()) << opened->message;
  EXPECT_EQ(opened->tracked, 4u);

  // One batch moves every contract; deltas arrive merged by global id.
  auto append = (*client)->Call(
      Request::StreamAppend(6, "s", {{"paid", "breach"}}));
  ASSERT_TRUE(append.ok());
  ASSERT_TRUE(append->status().ok()) << append->message;
  ASSERT_EQ(append->verdicts.size(), 4u);
  for (size_t i = 0; i < append->verdicts.size(); ++i) {
    EXPECT_EQ(append->verdicts[i].contract_id, i);
    EXPECT_EQ(append->verdicts[i].verdict,
              i % 2 ? monitor::StreamVerdict::kViolated
                    : monitor::StreamVerdict::kSatisfied);
  }

  auto closed = (*client)->Call(Request::StreamClose(7, "s"));
  ASSERT_TRUE(closed.ok());
  ASSERT_TRUE(closed->status().ok()) << closed->message;
  EXPECT_EQ(closed->satisfied, 2u);
  EXPECT_EQ(closed->violated, 2u);
  EXPECT_EQ(closed->verdicts.size(), 4u);

  EXPECT_TRUE((*started)->Shutdown().ok());
  EXPECT_TRUE((*sharded)->Close().ok());
}

TEST(ServerIntegrationTest, BadQueryComesBackAsErrorResponseNotHangup) {
  TempDir dir("net");
  Harness harness(dir.path());
  auto client = harness.Connect();

  auto bad = client->Call(Request::Query(1, "F (("));
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_FALSE(bad->status().ok());
  EXPECT_EQ(bad->id, 1u);

  // The connection survives an application-level error.
  auto good = client->Call(Request::Register(2, "a", "F pay"));
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->status().ok()) << good->message;
}

TEST(ServerIntegrationTest, PipelinedRequestsAllAnsweredWithMatchingIds) {
  TempDir dir("net");
  Harness harness(dir.path());
  auto client = harness.Connect();

  ASSERT_TRUE(
      client->Call(Request::Register(0, "seed", "F pay"))->status().ok());

  // Requests execute on concurrent workers, so responses may arrive in any
  // order — correlation ids are the contract, and every id must come back
  // exactly once.
  constexpr uint64_t kInFlight = 64;
  for (uint64_t id = 1; id <= kInFlight; ++id) {
    ASSERT_TRUE(client->Send(Request::Query(id, "F pay")).ok());
  }
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < kInFlight; ++i) {
    auto response = client->Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->status().ok()) << response->message;
    EXPECT_GE(response->id, 1u);
    EXPECT_LE(response->id, kInFlight);
    EXPECT_TRUE(seen.insert(response->id).second)
        << "duplicate response id " << response->id;
  }
  EXPECT_EQ(seen.size(), kInFlight);
}

TEST(ServerIntegrationTest, ConcurrentMixedClients) {
  TempDir dir("net");
  Harness harness(dir.path());

  // Prime the vocabulary so no query can race ahead of the registration
  // that would introduce its events.
  {
    auto prime = harness.Connect();
    auto response = prime->Call(
        Request::Register(0, "prime", "F (pay | request | grant | deliver)"));
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->status().ok()) << response->message;
  }

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 24;
  std::atomic<int> failures{0};
  std::atomic<int> ok_responses{0};
  std::atomic<int> acked_registers{0};

  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto connected = Client::Connect("127.0.0.1", harness.server->port());
      if (!connected.ok()) {
        failures.fetch_add(1);
        return;
      }
      auto& client = *connected;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const uint64_t id = static_cast<uint64_t>(c) * 1000 + i;
        Request request;
        switch (i % 4) {
          case 0:
            request = Request::Register(
                id, "c" + std::to_string(c) + "-" + std::to_string(i),
                NthLtl(i));
            break;
          case 1: request = Request::Query(id, "F pay"); break;
          case 2: request = Request::QueryBatch(id, {"F pay", "F grant"}); break;
          default: request = Request::Stats(id); break;
        }
        auto response = client->Call(request);
        if (!response.ok() || response->id != id) {
          failures.fetch_add(1);
          return;
        }
        // Admission control may shed under load; anything else must be OK.
        if (response->status().ok()) {
          ok_responses.fetch_add(1);
          if (i % 4 == 0) acked_registers.fetch_add(1);
        } else if (!response->status().IsUnavailable()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(ok_responses.load(), 0);
  // Every registration acked OK over the wire is in the database, and
  // nothing else is (names are unique, so no double counting; +1 for the
  // priming contract).
  EXPECT_EQ(harness.db->size(),
            static_cast<size_t>(acked_registers.load()) + 1);
}

TEST(ServerIntegrationTest, GracefulDrainAnswersEveryReceivedRequest) {
  TempDir dir("net");
  Harness harness(dir.path());
  auto client = harness.Connect();

  // Make sure the server has read and is executing real work, then drain.
  constexpr uint64_t kPipelined = 16;
  for (uint64_t id = 1; id <= kPipelined; ++id) {
    ASSERT_TRUE(
        client->Send(Request::Register(id, "d" + std::to_string(id),
                                       NthLtl(static_cast<int>(id))))
            .ok());
  }
  // First response proves the server has started consuming the pipeline.
  auto first = client->Receive();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->status().ok()) << first->message;

  harness.server->RequestDrain();

  // Every request the server had already received must still be answered
  // before the connection closes; the stream then ends cleanly. Responses
  // may arrive out of order (concurrent workers) but never duplicated.
  std::set<uint64_t> answered = {first->id};
  for (;;) {
    auto response = client->Receive();
    if (!response.ok()) break;  // server closed after flushing
    EXPECT_TRUE(response->status().ok()) << response->message;
    EXPECT_GE(response->id, 1u);
    EXPECT_LE(response->id, kPipelined);
    EXPECT_TRUE(answered.insert(response->id).second)
        << "duplicate response id " << response->id;
  }
  EXPECT_GE(answered.size(), 1u);
  ASSERT_TRUE(harness.server->Shutdown().ok());

  // Acked-over-the-wire implies recoverable: every answered registration
  // survives a close + reopen.
  ASSERT_TRUE(harness.db->Close().ok());
  harness.db.reset();
  harness.server.reset();
  auto reopened = DurableDatabase::Open(dir.path(), FastDurability());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GE((*reopened)->size(), answered.size());
  ASSERT_TRUE((*reopened)->Close().ok());
}

TEST(ServerIntegrationTest, RestartedServerRecoversContractSet) {
  TempDir dir("net");
  {
    Harness harness(dir.path());
    auto client = harness.Connect();
    for (uint64_t id = 0; id < 10; ++id) {
      auto response = client->Call(Request::Register(
          id, "r" + std::to_string(id), NthLtl(static_cast<int>(id))));
      ASSERT_TRUE(response.ok());
      ASSERT_TRUE(response->status().ok()) << response->message;
    }
    auto checkpoint = client->Call(Request::Checkpoint(99));
    ASSERT_TRUE(checkpoint.ok());
    ASSERT_TRUE(checkpoint->status().ok()) << checkpoint->message;
  }  // server shutdown + db close

  // A new server over the recovered database answers queries for the
  // contracts registered through the old one.
  Harness harness(dir.path());
  EXPECT_EQ(harness.db->size(), 10u);
  auto client = harness.Connect();
  auto query = client->Call(Request::Query(1, "F pay"));
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(query->status().ok()) << query->message;
  ASSERT_EQ(query->answers.size(), 1u);
  EXPECT_FALSE(query->answers[0].matches.empty());
  auto stats = client->Call(Request::Stats(2));
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->status().ok());
}

TEST(ServerIntegrationTest, ExecuteRequestMapsUnknownKindsToError) {
  TempDir dir("net");
  auto db = DurableDatabase::Open(dir.path(), FastDurability());
  ASSERT_TRUE(db.ok());
  Request request;
  request.kind = MsgKind::kResponse;  // not an operation
  request.id = 5;
  const Response response = ExecuteRequest(db->get(), request);
  EXPECT_FALSE(response.status().ok());
  EXPECT_EQ(response.id, 5u);
  ASSERT_TRUE((*db)->Close().ok());
}

}  // namespace
}  // namespace ctdb::net
