// The central correctness anchor of the translation substrate:
//   for random formulas ϕ and random lasso words w,
//     w ⊨ ϕ  (reference evaluator)  ⇔  BA(ϕ) accepts w.
// Runs across every pipeline configuration, plus satisfiability
// cross-checks (BA emptiness vs. witness search).

#include <gtest/gtest.h>

#include "automata/ops.h"
#include "automata/word.h"
#include "ltl/evaluator.h"
#include "ltl/patterns.h"
#include "testing/generators.h"
#include "translate/ltl_to_ba.h"

namespace ctdb::translate {
namespace {

using automata::AcceptsWord;

struct PipelineConfig {
  const char* name;
  bool simplify;
  bool prune;
  bool reduce;
};

class TranslateOracleTest : public ::testing::TestWithParam<PipelineConfig> {};

TEST_P(TranslateOracleTest, AgreesWithEvaluatorOnRandomInputs) {
  const PipelineConfig& config = GetParam();
  TranslateOptions options;
  options.simplify_formula = config.simplify;
  options.prune = config.prune;
  options.reduce = config.reduce;

  const size_t kEvents = 3;
  const Vocabulary vocab = ctdb::testing::TestVocabulary(kEvents);
  ltl::FormulaFactory fac;
  Rng rng(987654u ^ (config.simplify ? 1 : 0) ^ (config.prune ? 2 : 0) ^
          (config.reduce ? 4 : 0));

  for (int trial = 0; trial < 250; ++trial) {
    const ltl::Formula* f =
        ctdb::testing::RandomFormula(&rng, &fac, kEvents, 3);
    auto ba = LtlToBuchi(f, &fac, options);
    ASSERT_TRUE(ba.ok()) << f->ToString(vocab) << ": " << ba.status();
    for (int w = 0; w < 12; ++w) {
      const LassoWord word = ctdb::testing::RandomWord(&rng, kEvents, 3, 3);
      const bool expected = ltl::Evaluate(f, word);
      const bool actual = AcceptsWord(*ba, word);
      ASSERT_EQ(expected, actual)
          << "formula: " << f->ToString(vocab)
          << "\nword: " << word.ToString(vocab)
          << "\nconfig: " << config.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pipelines, TranslateOracleTest,
    ::testing::Values(PipelineConfig{"raw", false, false, false},
                      PipelineConfig{"simplify", true, false, false},
                      PipelineConfig{"prune", false, true, false},
                      PipelineConfig{"reduce", false, false, true},
                      PipelineConfig{"full", true, true, true}),
    [](const auto& info) { return info.param.name; });

TEST(TranslateOracleTest, DeeperFormulasAgree) {
  const size_t kEvents = 4;
  const Vocabulary vocab = ctdb::testing::TestVocabulary(kEvents);
  ltl::FormulaFactory fac;
  Rng rng(13579);
  for (int trial = 0; trial < 60; ++trial) {
    const ltl::Formula* f =
        ctdb::testing::RandomFormula(&rng, &fac, kEvents, 5);
    auto ba = LtlToBuchi(f, &fac);
    ASSERT_TRUE(ba.ok()) << f->ToString(vocab);
    for (int w = 0; w < 8; ++w) {
      const LassoWord word = ctdb::testing::RandomWord(&rng, kEvents, 4, 4);
      ASSERT_EQ(ltl::Evaluate(f, word), AcceptsWord(*ba, word))
          << f->ToString(vocab) << " on " << word.ToString(vocab);
    }
  }
}

TEST(TranslateOracleTest, DwyerPatternsAgree) {
  const size_t kEvents = 4;
  const Vocabulary vocab = ctdb::testing::TestVocabulary(kEvents);
  ltl::FormulaFactory fac;
  Rng rng(24680);
  const ltl::Formula* props[4] = {fac.Prop(0), fac.Prop(1), fac.Prop(2),
                                  fac.Prop(3)};
  for (int b = 0; b < 5; ++b) {
    for (int s = 0; s < 4; ++s) {
      const ltl::Formula* f = ltl::MakePattern(
          static_cast<ltl::PatternBehavior>(b),
          static_cast<ltl::PatternScope>(s), props[0], props[1], props[2],
          props[3], &fac);
      auto ba = LtlToBuchi(f, &fac);
      ASSERT_TRUE(ba.ok()) << f->ToString(vocab);
      for (int w = 0; w < 120; ++w) {
        const LassoWord word = ctdb::testing::RandomWord(&rng, kEvents, 4, 3);
        ASSERT_EQ(ltl::Evaluate(f, word), AcceptsWord(*ba, word))
            << f->ToString(vocab) << " on " << word.ToString(vocab);
      }
    }
  }
}

/// Emptiness of BA(ϕ) must agree with an exhaustive witness search over all
/// short lasso words on a 1-event vocabulary.
TEST(TranslateOracleTest, EmptinessMatchesWitnessSearch) {
  const size_t kEvents = 1;
  ltl::FormulaFactory fac;
  const Vocabulary vocab = ctdb::testing::TestVocabulary(kEvents);
  Rng rng(112233);

  // All lasso words over {∅,{e0}} with |u| ≤ 2, |v| ≤ 2.
  std::vector<LassoWord> words;
  for (int pl = 0; pl <= 2; ++pl) {
    for (int cl = 1; cl <= 2; ++cl) {
      for (int bits = 0; bits < (1 << (pl + cl)); ++bits) {
        LassoWord w;
        for (int i = 0; i < pl + cl; ++i) {
          Snapshot s(1);
          if ((bits >> i) & 1) s.Set(0);
          if (i < pl) {
            w.prefix.push_back(s);
          } else {
            w.cycle.push_back(s);
          }
        }
        words.push_back(std::move(w));
      }
    }
  }

  for (int trial = 0; trial < 150; ++trial) {
    const ltl::Formula* f =
        ctdb::testing::RandomFormula(&rng, &fac, kEvents, 3);
    auto ba = LtlToBuchi(f, &fac);
    ASSERT_TRUE(ba.ok());
    bool witness = false;
    for (const LassoWord& w : words) {
      if (ltl::Evaluate(f, w)) {
        witness = true;
        break;
      }
    }
    // Over a 1-event vocabulary, any satisfiable formula of tableau size k
    // has an ultimately-periodic model; short words suffice for depth-3
    // formulas in practice. Only assert the sound direction plus agreement:
    if (witness) {
      EXPECT_FALSE(automata::IsEmptyLanguage(*ba)) << f->ToString(vocab);
    }
    if (automata::IsEmptyLanguage(*ba)) {
      EXPECT_FALSE(witness) << f->ToString(vocab);
    }
  }
}

}  // namespace
}  // namespace ctdb::translate
