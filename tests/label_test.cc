#include "base/label.h"

#include <gtest/gtest.h>

#include "base/literal.h"
#include "base/run.h"

namespace ctdb {
namespace {

class LabelTest : public ::testing::Test {
 protected:
  LabelTest() : vocab_({"purchase", "use", "missedFlight", "refund",
                        "dateChange"}) {}
  Vocabulary vocab_;
};

TEST_F(LabelTest, EmptyLabelIsTrue) {
  Label l;
  EXPECT_TRUE(l.IsTrue());
  EXPECT_TRUE(l.IsSatisfiable());
  EXPECT_EQ(l.LiteralCount(), 0u);
  EXPECT_EQ(l.ToString(vocab_), "true");
}

TEST_F(LabelTest, AddAndContains) {
  Label l;
  l.AddPositive(3);  // refund
  l.AddNegative(1);  // !use
  EXPECT_TRUE(l.Contains(Literal{3, false}));
  EXPECT_TRUE(l.Contains(Literal{1, true}));
  EXPECT_FALSE(l.Contains(Literal{3, true}));
  EXPECT_FALSE(l.Contains(Literal{0, false}));
  EXPECT_EQ(l.LiteralCount(), 2u);
  EXPECT_EQ(l.ToString(vocab_), "!use & refund");
}

TEST_F(LabelTest, Satisfiability) {
  Label l;
  l.AddPositive(2);
  EXPECT_TRUE(l.IsSatisfiable());
  l.AddNegative(2);
  EXPECT_FALSE(l.IsSatisfiable());
}

TEST_F(LabelTest, LiteralsSortedById) {
  Label l = Label::FromLiterals(
      {Literal{4, true}, Literal{0, false}, Literal{2, false}});
  const auto lits = l.Literals();
  ASSERT_EQ(lits.size(), 3u);
  EXPECT_EQ(lits[0], (Literal{0, false}));
  EXPECT_EQ(lits[1], (Literal{2, false}));
  EXPECT_EQ(lits[2], (Literal{4, true}));
  EXPECT_EQ(l.Key(), (LiteralKey{0, 4, 9}));
}

TEST_F(LabelTest, ConjunctionMerges) {
  Label a;
  a.AddPositive(0);
  Label b;
  b.AddNegative(1);
  const Label c = a.ConjunctionWith(b);
  EXPECT_TRUE(c.Contains(Literal{0, false}));
  EXPECT_TRUE(c.Contains(Literal{1, true}));
  EXPECT_TRUE(c.IsSatisfiable());
  Label d;
  d.AddNegative(0);
  EXPECT_FALSE(a.ConjunctionWith(d).IsSatisfiable());
}

TEST_F(LabelTest, ConsistencyIsConflictFreedom) {
  Label a;
  a.AddPositive(0);
  a.AddNegative(1);
  Label same;
  same.AddPositive(0);
  EXPECT_TRUE(a.ConsistentWith(same));
  Label conflict;
  conflict.AddPositive(1);  // a has !use
  EXPECT_FALSE(a.ConsistentWith(conflict));
  Label other_events;
  other_events.AddPositive(4);
  EXPECT_TRUE(a.ConsistentWith(other_events));
}

TEST_F(LabelTest, CitesOnly) {
  Bitset contract_events(5);
  contract_events.Set(0);
  contract_events.Set(1);
  Label within;
  within.AddPositive(0);
  within.AddNegative(1);
  EXPECT_TRUE(within.CitesOnly(contract_events));
  Label outside;
  outside.AddPositive(3);
  EXPECT_FALSE(outside.CitesOnly(contract_events));
  EXPECT_TRUE(Label().CitesOnly(contract_events));  // true cites nothing
}

TEST_F(LabelTest, ProjectOnto) {
  Label l;
  l.AddPositive(0);
  l.AddNegative(1);
  l.AddNegative(2);
  Bitset keep_pos(5);
  keep_pos.Set(0);
  Bitset keep_neg(5);
  keep_neg.Set(2);
  const Label p = l.ProjectOnto(keep_pos, keep_neg);
  EXPECT_TRUE(p.Contains(Literal{0, false}));
  EXPECT_FALSE(p.Contains(Literal{1, true}));   // dropped
  EXPECT_TRUE(p.Contains(Literal{2, true}));
  EXPECT_EQ(p.LiteralCount(), 2u);
}

TEST_F(LabelTest, ExpansionMatchesPaperExample11) {
  // Paper Example 11: label t = p ∧ c in a contract citing {p, c, m}
  // has E(p ∧ c) = {p, c, m, ¬m}.
  Vocabulary v({"p", "c", "m", "r"});
  Label t;
  t.AddPositive(0);  // p
  t.AddPositive(1);  // c
  Bitset cited(4);
  cited.Set(0);
  cited.Set(1);
  cited.Set(2);
  const LiteralKey expansion = t.Expansion(cited);
  // ids: p=0, c=2, m=4, !m=5.
  EXPECT_EQ(expansion, (LiteralKey{0, 2, 4, 5}));
}

TEST_F(LabelTest, ExpansionKeepsLabelOnlyEventsDefensively) {
  Vocabulary v({"p", "c"});
  Label t;
  t.AddNegative(1);  // !c — but contract "cites" only p
  Bitset cited(2);
  cited.Set(0);
  const LiteralKey expansion = t.Expansion(cited);
  // p uncited in label → both polarities {0,1}; !c kept as-is (id 3).
  EXPECT_EQ(expansion, (LiteralKey{0, 1, 3}));
}

TEST_F(LabelTest, EqualityAndHash) {
  Label a;
  a.AddPositive(0);
  a.AddNegative(4);
  Label b;
  b.AddNegative(4);
  b.AddPositive(0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  Label c = a;
  c.AddPositive(1);
  EXPECT_NE(a, c);
}

TEST_F(LabelTest, SnapshotSatisfaction) {
  Label l;
  l.AddPositive(0);
  l.AddNegative(1);
  Snapshot only_purchase(5);
  only_purchase.Set(0);
  EXPECT_TRUE(Satisfies(only_purchase, l));
  Snapshot both(5);
  both.Set(0);
  both.Set(1);
  EXPECT_FALSE(Satisfies(both, l));
  Snapshot neither(5);
  EXPECT_FALSE(Satisfies(neither, l));
  // `true` label matches every snapshot.
  EXPECT_TRUE(Satisfies(neither, Label()));
}

TEST(LassoWordTest, PositionArithmetic) {
  LassoWord w;
  w.prefix = {Snapshot(2), Snapshot(2)};
  w.cycle = {Snapshot(2), Snapshot(2), Snapshot(2)};
  EXPECT_TRUE(w.Valid());
  EXPECT_EQ(w.PositionCount(), 5u);
  EXPECT_EQ(w.Successor(0), 1u);
  EXPECT_EQ(w.Successor(1), 2u);
  EXPECT_EQ(w.Successor(4), 2u);  // wraps to cycle start
}

TEST(LassoWordTest, AtInstantWraps) {
  LassoWord w;
  Snapshot a(1);
  a.Set(0);
  Snapshot b(1);
  w.prefix = {a};       // instant 0: {p}
  w.cycle = {b, a};     // instants 1,3,5...: {}, instants 2,4,...: {p}
  EXPECT_TRUE(w.AtInstant(0).Test(0));
  EXPECT_FALSE(w.AtInstant(1).Test(0));
  EXPECT_TRUE(w.AtInstant(2).Test(0));
  EXPECT_FALSE(w.AtInstant(3).Test(0));
  EXPECT_TRUE(w.AtInstant(100).Test(0));  // even + prefix offset
}

}  // namespace
}  // namespace ctdb
