// Concurrency tests for the sharded metrics registry: writer threads hammer
// a counter / gauge / histogram while a scraper loops Snapshot(); after the
// writers join, no increment may be lost. Runs under the TSan CI job (the
// job's -R filter matches "Obs"), which is what actually checks the relaxed
// atomics are race-free.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace ctdb::obs {
namespace {

// More writers than kShards, so shard slots are shared between threads.
constexpr size_t kWriters = 24;
constexpr size_t kIncrementsPerWriter = 20000;

TEST(ObsConcurrencyTest, NoLostCounterIncrementsUnderScrape) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("concurrent.counter");

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t now = registry.Snapshot().CounterValue(
          "concurrent.counter");
      EXPECT_GE(now, last);  // monotone even mid-flight
      last = now;
    }
  });

  std::vector<std::thread> writers;
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (size_t i = 0; i < kIncrementsPerWriter; ++i) counter->Add(1);
    });
  }
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(counter->Value(), kWriters * kIncrementsPerWriter);
}

TEST(ObsConcurrencyTest, GaugeBalancesToZeroAcrossThreads) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("concurrent.gauge");

  std::vector<std::thread> writers;
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (size_t i = 0; i < kIncrementsPerWriter; ++i) {
        gauge->Add(3);
        gauge->Sub(3);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(gauge->Value(), 0);
}

TEST(ObsConcurrencyTest, HistogramCountsSumMinMaxExactAfterJoin) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("concurrent.hist");

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const HistogramSnapshot snap = hist->Snapshot();
      // Mid-flight snapshots may lag, but bucket totals never exceed count
      // by more than the in-flight writes can explain; after join we check
      // exactly. Here: count within the final bound.
      EXPECT_LE(snap.count, kWriters * kIncrementsPerWriter);
    }
  });

  std::vector<std::thread> writers;
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      // Each writer records a fixed arithmetic stream so the exact totals
      // are known: values t*kIncrementsPerWriter .. (t+1)*kIPW - 1.
      const uint64_t base = t * kIncrementsPerWriter;
      for (uint64_t i = 0; i < kIncrementsPerWriter; ++i) {
        hist->Record(base + i);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_release);
  scraper.join();

  const uint64_t n = kWriters * kIncrementsPerWriter;
  const HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, n);
  EXPECT_EQ(snap.sum, n * (n - 1) / 2);  // sum of 0..n-1
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, n - 1);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, n);
}

TEST(ObsConcurrencyTest, RegistryGetOrCreateIsThreadSafe) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  std::atomic<Counter*> first{nullptr};
  for (size_t t = 0; t < kWriters; ++t) {
    threads.emplace_back([&] {
      Counter* c = registry.GetCounter("race.counter");
      Counter* expected = nullptr;
      first.compare_exchange_strong(expected, c);
      EXPECT_EQ(first.load(), c);  // everyone resolves the same handle
      c->Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.Snapshot().CounterValue("race.counter"), kWriters);
}

TEST(ObsConcurrencyTest, EnabledToggleRacesAreBenign) {
  // SetEnabled is a relaxed atomic store; flipping it while macro sites run
  // must not corrupt totals (each increment either lands fully or not at
  // all). The final value only needs to be ≤ the attempted increments.
  const bool was_enabled = Enabled();
  std::atomic<bool> done{false};
  std::thread toggler([&] {
    bool on = false;
    while (!done.load(std::memory_order_acquire)) {
      SetEnabled(on);
      on = !on;
    }
  });

  for (int i = 0; i < 50000; ++i) {
    CTDB_OBS_COUNT("obs_concurrency_test.toggle_counter", 1);
  }
  done.store(true, std::memory_order_release);
  toggler.join();
  SetEnabled(was_enabled);

  const uint64_t value = MetricsRegistry::Default()->Snapshot().CounterValue(
      "obs_concurrency_test.toggle_counter");
  EXPECT_LE(value, 50000u);
}

}  // namespace
}  // namespace ctdb::obs
