// Thread-safety suite for the streaming monitor (DESIGN.md §15), run under
// TSan in CI (the MonitorConcurrency name is in the tsan test_filter).
// Three contracts under load:
//
//  * streams are isolated from the contract lifecycle — a session opened
//    while Register/Replace/Unregister storm the database keeps exactly
//    the contract set it pinned at open;
//  * appends to one stream serialize — concurrent appenders through the
//    registry lose no events and corrupt no verdict state;
//  * the registry survives open/append/close churn on a shared name with
//    only AlreadyExists/NotFound as outcomes, never a torn stream.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "broker/database.h"
#include "broker/durable.h"
#include "monitor/monitor.h"
#include "monitor/types.h"
#include "testing/temp_dir.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "wal/wal.h"

namespace ctdb::monitor {
namespace {

using ::ctdb::testing::TempDir;


wal::DurabilityOptions FastOptions() {
  wal::DurabilityOptions options;
  options.fsync_policy = wal::FsyncPolicy::kNever;
  return options;
}

EventBatch RandomBatch(Rng* rng) {
  EventBatch batch(1 + rng->Uniform(3));
  for (std::vector<std::string>& instant : batch) {
    const size_t n = rng->Uniform(3);
    for (size_t i = 0; i < n; ++i) {
      instant.push_back("p" + std::to_string(rng->Uniform(6)));
    }
  }
  return batch;
}

TEST(MonitorConcurrencyTest, AppendersRaceLifecycleMutations) {
  TempDir dir("monitor");
  auto opened = broker::DurableDatabase::Open(dir.path(), FastOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  broker::DurableDatabase* db = opened->get();
  for (int c = 0; c < 4; ++c) {
    ASSERT_TRUE(db->Register("seed" + std::to_string(c),
                             StringFormat("G(p%d -> F p%d)", c, c + 1))
                    .ok());
  }

  constexpr size_t kStreams = 4;
  constexpr size_t kAppends = 40;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread mutator([&] {
    Rng rng(0xA11CE);
    uint32_t next = 4;
    while (!stop.load(std::memory_order_relaxed)) {
      const uint32_t pick = static_cast<uint32_t>(rng.Uniform(3));
      if (pick == 0) {
        (void)db->Register("mut" + std::to_string(next++),
                           StringFormat("F p%d", static_cast<int>(rng.Uniform(6))));
      } else if (pick == 1) {
        (void)db->Replace(static_cast<uint32_t>(rng.Uniform(next)),
                          StringFormat("G !p%d", static_cast<int>(rng.Uniform(6))));
      } else {
        (void)db->Unregister(static_cast<uint32_t>(rng.Uniform(next)));
      }
    }
  });

  std::vector<std::thread> appenders;
  for (size_t t = 0; t < kStreams; ++t) {
    appenders.emplace_back([&, t] {
      Rng rng(0xBEE5 + t);
      const std::string name = "stream-" + std::to_string(t);
      auto info = db->StreamOpen(name);
      if (!info.ok()) {
        ++failures;
        return;
      }
      uint64_t events = 0;
      for (size_t i = 0; i < kAppends; ++i) {
        const EventBatch batch = RandomBatch(&rng);
        auto result = db->StreamAppend(name, batch);
        if (!result.ok()) {
          ++failures;
          return;
        }
        events += batch.size();
      }
      auto closed = db->StreamClose(name);
      if (!closed.ok() || closed->events != events ||
          closed->verdicts.size() != info->tracked) {
        ++failures;
      }
    });
  }
  for (std::thread& t : appenders) t.join();
  stop.store(true, std::memory_order_relaxed);
  mutator.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(MonitorConcurrencyTest, ConcurrentAppendsToOneStreamSerialize) {
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("resp", "G(p0 -> F p1)").ok());
  ASSERT_TRUE(db.Register("live", "F p2").ok());
  StreamMonitor monitor;
  ASSERT_TRUE(monitor.Open("shared", db.Snapshot()).ok());

  constexpr size_t kThreads = 4;
  constexpr size_t kAppends = 50;
  std::atomic<uint64_t> appended{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xD1CE + t);
      for (size_t i = 0; i < kAppends; ++i) {
        const EventBatch batch = RandomBatch(&rng);
        auto result = monitor.Append("shared", batch);
        if (!result.ok()) {
          ++failures;
          return;
        }
        appended.fetch_add(batch.size(), std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ASSERT_EQ(failures.load(), 0);
  auto closed = monitor.Close("shared");
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed->events, appended.load());
  EXPECT_EQ(closed->verdicts.size(), 2u);
}

TEST(MonitorConcurrencyTest, OpenCloseChurnOnSharedName) {
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("c0", "F p0").ok());
  StreamMonitor monitor;

  constexpr size_t kThreads = 4;
  constexpr size_t kRounds = 60;
  std::atomic<int> unexpected{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xF00D + t);
      for (size_t i = 0; i < kRounds; ++i) {
        auto opened = monitor.Open("churn", db.Snapshot());
        if (!opened.ok() && !opened.status().IsAlreadyExists()) ++unexpected;
        auto result = monitor.Append("churn", RandomBatch(&rng));
        if (!result.ok() && !result.status().IsNotFound()) ++unexpected;
        if (rng.Chance(0.5)) {
          auto closed = monitor.Close("churn");
          if (!closed.ok() && !closed.status().IsNotFound()) ++unexpected;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(unexpected.load(), 0);
  // Whatever the race left behind is one coherent stream at most.
  auto leftover = monitor.Close("churn");
  EXPECT_TRUE(leftover.ok() || leftover.status().IsNotFound());
  EXPECT_EQ(monitor.open_streams(), 0u);
}

}  // namespace
}  // namespace ctdb::monitor
