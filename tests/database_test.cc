#include "broker/database.h"

#include <gtest/gtest.h>

namespace ctdb::broker {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  QueryResult MustQuery(ContractDatabase* db, const std::string& q,
                        const QueryOptions& options = {}) {
    auto r = db->Query(q, options);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : QueryResult{};
  }
};

TEST_F(DatabaseTest, RegisterAssignsSequentialIds) {
  ContractDatabase db;
  auto a = db.Register("A", "G(p -> F q)");
  auto b = db.Register("B", "G(!p)");
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.contract(0).name, "A");
  EXPECT_EQ(db.contract(1).ltl_text, "G(!p)");
}

TEST_F(DatabaseTest, RegisterRejectsBadLtl) {
  ContractDatabase db;
  EXPECT_FALSE(db.Register("bad", "G(p ->").ok());
}

TEST_F(DatabaseTest, RegistrationStatsPopulated) {
  ContractDatabase db;
  RegistrationStats stats;
  ASSERT_TRUE(db.Register("A", "G(p -> F q)", &stats).ok());
  EXPECT_GT(stats.ba_states, 0u);
  EXPECT_GT(stats.ba_transitions, 0u);
  EXPECT_GT(stats.projection_subsets, 0u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST_F(DatabaseTest, QueryRejectsUnknownEvents) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("A", "G(p -> F q)").ok());
  EXPECT_TRUE(db.Query("F unknownEvent").status().IsNotFound());
}

TEST_F(DatabaseTest, QueryFindsPermittingContracts) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("allows", "G(p -> F q)").ok());
  ASSERT_TRUE(db.Register("forbids_q", "G(!q)").ok());
  const QueryResult r = MustQuery(&db, "F q");
  EXPECT_EQ(r.matches, (std::vector<uint32_t>{0}));
  EXPECT_EQ(r.stats.matches, 1u);
  EXPECT_EQ(r.stats.database_size, 2u);
}

TEST_F(DatabaseTest, UnderspecifiedContractNotReturned) {
  // The "class upgrade" lesson of Example 4: contract citing only p can
  // never permit a query about q.
  ContractDatabase db;
  ASSERT_TRUE(db.Register("only_p", "G F p").ok());
  ASSERT_TRUE(db.InternEvent("q").ok());
  const QueryResult r = MustQuery(&db, "F q");
  EXPECT_TRUE(r.matches.empty());
}

TEST_F(DatabaseTest, AllOptimizationCombinationsAgree) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "G(p -> F q)").ok());
  ASSERT_TRUE(db.Register("b", "G(!q) & F p").ok());
  ASSERT_TRUE(db.Register("c", "G(p -> X(!F p))").ok());
  ASSERT_TRUE(db.Register("d", "(!p U q) & G F p").ok());

  const char* queries[] = {"F q", "F(p & F q)", "G !p", "F p & F q",
                           "G F p", "p U q"};
  for (const char* q : queries) {
    QueryOptions optimized;
    QueryOptions no_prefilter;
    no_prefilter.use_prefilter = false;
    QueryOptions no_projections;
    no_projections.use_projections = false;
    QueryOptions unoptimized;
    unoptimized.use_prefilter = false;
    unoptimized.use_projections = false;
    QueryOptions scc;
    scc.permission.algorithm = core::PermissionAlgorithm::kScc;

    const auto r1 = MustQuery(&db, q, optimized);
    const auto r2 = MustQuery(&db, q, no_prefilter);
    const auto r3 = MustQuery(&db, q, no_projections);
    const auto r4 = MustQuery(&db, q, unoptimized);
    const auto r5 = MustQuery(&db, q, scc);
    EXPECT_EQ(r1.matches, r2.matches) << q;
    EXPECT_EQ(r1.matches, r3.matches) << q;
    EXPECT_EQ(r1.matches, r4.matches) << q;
    EXPECT_EQ(r1.matches, r5.matches) << q;
    EXPECT_LE(r1.stats.candidates, r4.stats.candidates) << q;
  }
}

TEST_F(DatabaseTest, PrefilterReducesCandidates) {
  ContractDatabase db;
  // Ten contracts citing disjoint event pairs.
  for (int i = 0; i < 10; ++i) {
    const std::string a = "ev" + std::to_string(2 * i);
    const std::string b = "ev" + std::to_string(2 * i + 1);
    ASSERT_TRUE(db.Register("c" + std::to_string(i),
                            "G(" + a + " -> F " + b + ")")
                    .ok());
  }
  const QueryResult r = MustQuery(&db, "F ev1");
  EXPECT_EQ(r.stats.candidates, 1u);
  EXPECT_EQ(r.matches, (std::vector<uint32_t>{0}));
}

TEST_F(DatabaseTest, UnsatisfiableQueryReturnsNothingFast) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "G(p -> F q)").ok());
  const QueryResult r = MustQuery(&db, "q & !q");
  EXPECT_TRUE(r.matches.empty());
  EXPECT_EQ(r.stats.candidates, 0u);  // pruning condition is FALSE
}

TEST_F(DatabaseTest, DisabledIndexStructuresStillCorrect) {
  DatabaseOptions options;
  options.build_prefilter = false;
  options.build_projections = false;
  ContractDatabase db(options);
  ASSERT_TRUE(db.Register("a", "G(p -> F q)").ok());
  const QueryResult r = MustQuery(&db, "F q");
  EXPECT_EQ(r.matches, (std::vector<uint32_t>{0}));
  // With the prefilter disabled, every contract is a candidate.
  EXPECT_EQ(r.stats.candidates, 1u);
}

// Requirement iii of §1: publishing a contract with a different policy (and
// new events) must not force revising previously published contracts — old
// contracts keep answering exactly as before.
TEST_F(DatabaseTest, VocabularyEvolutionDoesNotDisturbOldContracts) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("old", "G(p -> F q)").ok());
  auto before = MustQuery(&db, "F q");
  ASSERT_EQ(before.matches, (std::vector<uint32_t>{0}));

  // A newcomer introduces two fresh events.
  ASSERT_TRUE(db.Register("new", "G(shiny -> F sparkly) & F q").ok());

  // The old contract's answers are unchanged...
  auto after = MustQuery(&db, "F q");
  EXPECT_EQ(after.matches, (std::vector<uint32_t>{0, 1}));
  auto old_only = MustQuery(&db, "G(p -> F q) & F p");
  EXPECT_TRUE(std::find(old_only.matches.begin(), old_only.matches.end(), 0u)
              != old_only.matches.end());
  // ...and it never matches queries about events it does not cite
  // (Definition 1(b) — no free visibility from underspecification).
  auto shiny = MustQuery(&db, "F sparkly");
  EXPECT_EQ(shiny.matches, (std::vector<uint32_t>{1}));
}

TEST_F(DatabaseTest, MemoryUsageReporting) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "G(p -> F q)").ok());
  EXPECT_GT(db.PrefilterMemoryUsage(), 0u);
  EXPECT_GT(db.ContractMemoryUsage(), 0u);
  EXPECT_GT(db.ProjectionMemoryUsage(), 0u);
}

TEST_F(DatabaseTest, QueryStatsTimingsPopulated) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "G(p -> F q)").ok());
  const QueryResult r = MustQuery(&db, "F q");
  EXPECT_GE(r.stats.total_ms, 0.0);
  EXPECT_GT(r.stats.query_states, 0u);
  EXPECT_FALSE(r.stats.ToString().empty());
}

TEST_F(DatabaseTest, ParallelEvaluationMatchesSequential) {
  ContractDatabase db;
  for (int i = 0; i < 24; ++i) {
    const std::string a = "pe" + std::to_string(i % 6);
    const std::string b = "pe" + std::to_string((i + 1) % 6);
    ASSERT_TRUE(db.Register("c" + std::to_string(i),
                            "G(" + a + " -> F " + b + ") & F " + a)
                    .ok());
  }
  for (const char* q : {"F pe1", "F(pe0 & F pe1)", "G !pe2", "F pe3 & F pe4"}) {
    QueryOptions sequential;
    auto r1 = MustQuery(&db, q, sequential);
    for (size_t threads : {2u, 4u, 7u}) {
      QueryOptions parallel;
      parallel.threads = threads;
      parallel.collect_witnesses = true;
      auto r2 = MustQuery(&db, q, parallel);
      EXPECT_EQ(r1.matches, r2.matches) << q << " threads=" << threads;
      EXPECT_EQ(r2.witnesses.size(), r2.matches.size());
      // Matches stay sorted by contract id (chunk-order merge).
      EXPECT_TRUE(std::is_sorted(r2.matches.begin(), r2.matches.end()));
    }
  }
}

TEST_F(DatabaseTest, RegisterBatchMatchesSequentialRegistration) {
  std::vector<ContractDatabase::BatchEntry> entries;
  for (int i = 0; i < 10; ++i) {
    const std::string a = "bt" + std::to_string(i % 4);
    const std::string b = "bt" + std::to_string((i + 1) % 4);
    entries.push_back({"c" + std::to_string(i),
                       "G(" + a + " -> F " + b + ") & F " + a});
  }

  ContractDatabase sequential;
  for (const auto& e : entries) {
    ASSERT_TRUE(sequential.Register(e.name, e.ltl_text).ok());
  }
  for (size_t threads : {1u, 3u, 8u}) {
    ContractDatabase batched;
    auto ids = batched.RegisterBatch(entries, threads);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ASSERT_EQ(ids->size(), entries.size());
    EXPECT_EQ(batched.size(), sequential.size());
    for (const char* q : {"F bt1", "F(bt0 & F bt2)", "G !bt3"}) {
      auto r1 = sequential.Query(q);
      auto r2 = batched.Query(q);
      ASSERT_TRUE(r1.ok());
      ASSERT_TRUE(r2.ok());
      EXPECT_EQ(r1->matches, r2->matches) << q << " threads=" << threads;
      EXPECT_EQ(r1->stats.candidates, r2->stats.candidates) << q;
    }
  }
}

TEST_F(DatabaseTest, RegisterBatchIsAtomicOnError) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("keep", "G(p -> F q)").ok());
  std::vector<ContractDatabase::BatchEntry> entries = {
      {"good", "F p"},
      {"bad", "G(p ->"},  // parse error
  };
  EXPECT_FALSE(db.RegisterBatch(entries, 2).ok());
  EXPECT_EQ(db.size(), 1u);  // nothing from the failed batch
}

TEST_F(DatabaseTest, ZeroThreadsInheritsDatabaseDefault) {
  // QueryOptions::threads == 0 inherits DatabaseOptions::threads: serial on
  // a default database, pooled on one configured for concurrency — with
  // identical matches either way.
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "G(p -> F q)").ok());
  QueryOptions options;
  options.threads = 0;
  const QueryResult r = MustQuery(&db, "F q", options);
  EXPECT_EQ(r.matches, (std::vector<uint32_t>{0}));

  DatabaseOptions pooled;
  pooled.threads = 3;
  ContractDatabase db_pooled(pooled);
  ASSERT_TRUE(db_pooled.Register("a", "G(p -> F q)").ok());
  ASSERT_TRUE(db_pooled.Register("b", "G(p -> F r) & F r").ok());
  const QueryResult rp = MustQuery(&db_pooled, "F q", options);
  EXPECT_EQ(rp.matches, (std::vector<uint32_t>{0}));
}

TEST_F(DatabaseTest, RegisterFormulaDirectly) {
  ContractDatabase db;
  auto* fac = db.factory();
  auto p = db.vocabulary()->Intern("p");
  ASSERT_TRUE(p.ok());
  const ltl::Formula* spec = fac->Globally(fac->Prop(*p));
  auto id = db.RegisterFormula("direct", spec);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(db.contract(*id).ltl_text, "G p");
  const QueryResult r = MustQuery(&db, "G p");
  EXPECT_EQ(r.matches, (std::vector<uint32_t>{0}));
}

TEST_F(DatabaseTest, SnapshotIsStableAcrossRegistrations) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "G(p -> F q)").ok());
  const std::shared_ptr<const DatabaseSnapshot> snap = db.Snapshot();
  ASSERT_EQ(snap->size(), 1u);

  ASSERT_TRUE(db.Register("b", "G F q").ok());
  // The held snapshot is frozen: it neither sees the new contract nor the
  // database's new snapshot.
  EXPECT_EQ(snap->size(), 1u);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_NE(snap.get(), db.Snapshot().get());

  auto old_r = snap->Query("F q");
  ASSERT_TRUE(old_r.ok());
  EXPECT_EQ(old_r->matches, (std::vector<uint32_t>{0}));
  const QueryResult new_r = MustQuery(&db, "F q");
  EXPECT_EQ(new_r.matches, (std::vector<uint32_t>{0, 1}));
}

TEST_F(DatabaseTest, RejectedQueryLeavesSnapshotUntouched) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "G(p -> F q)").ok());
  const std::shared_ptr<const DatabaseSnapshot> before = db.Snapshot();
  EXPECT_TRUE(db.Query("F unknownEvent").status().IsNotFound());
  EXPECT_TRUE(db.QueryBatch({"F q", "F unknownEvent"}).status().IsNotFound());
  // The read path publishes nothing — same snapshot object, same vocabulary.
  EXPECT_EQ(before.get(), db.Snapshot().get());
  EXPECT_FALSE(db.Snapshot()->vocabulary().Contains("unknownEvent"));
}

TEST_F(DatabaseTest, FailedRegistrationLeavesSnapshotUntouched) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "G(p -> F q)").ok());
  const std::shared_ptr<const DatabaseSnapshot> before = db.Snapshot();

  // Parse error.
  EXPECT_FALSE(db.Register("bad", "G(p ->").ok());
  // Validation error: the initial state is out of range.
  automata::Buchi bad_ba;
  bad_ba.SetInitial(5);
  EXPECT_FALSE(db.RegisterAutomaton("bad", "true", std::move(bad_ba),
                                    Bitset())
                   .ok());

  // Queries keep observing the exact pre-failure state.
  EXPECT_EQ(before.get(), db.Snapshot().get());
  EXPECT_EQ(db.size(), 1u);
  const QueryResult r = MustQuery(&db, "F q");
  EXPECT_EQ(r.matches, (std::vector<uint32_t>{0}));
  EXPECT_EQ(r.stats.database_size, 1u);
}

TEST_F(DatabaseTest, InternEventPublishesImmediately) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("only_p", "G F p").ok());
  const std::shared_ptr<const DatabaseSnapshot> before = db.Snapshot();
  EXPECT_TRUE(db.Query("F q").status().IsNotFound());

  auto id = db.InternEvent("q");
  ASSERT_TRUE(id.ok());
  // Idempotent: re-interning returns the same id.
  auto again = db.InternEvent("q");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*id, *again);

  // The new snapshot can cite q; the old one still cannot.
  const QueryResult r = MustQuery(&db, "F q");
  EXPECT_TRUE(r.matches.empty());
  EXPECT_TRUE(before->Query("F q").status().IsNotFound());
}

TEST_F(DatabaseTest, QueryIsConstAndUsableThroughConstRef) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "G(p -> F q)").ok());
  const ContractDatabase& cdb = db;  // the read API is const
  auto r = cdb.Query("F q");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->matches, (std::vector<uint32_t>{0}));
  auto batch = cdb.QueryBatch({"F q", "G !p"});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 2u);
}

}  // namespace
}  // namespace ctdb::broker
