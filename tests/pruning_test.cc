#include "index/pruning.h"

#include <gtest/gtest.h>

#include "core/permission.h"
#include "ltl/parser.h"
#include "testing/generators.h"
#include "translate/ltl_to_ba.h"

namespace ctdb::index {
namespace {

using automata::Buchi;
using automata::StateId;

Label L(std::initializer_list<Literal> lits) {
  return Label::FromLiterals(std::vector<Literal>(lits));
}

TEST(PruningTest, NoKnottableFinalStateYieldsFalse) {
  // Final state with no cycle: query language empty.
  Buchi ba;
  const StateId fin = ba.AddState();
  ba.SetFinal(fin);
  ba.AddTransition(0, L({{0, false}}), fin);
  const Condition c = ExtractPruningCondition(ba);
  EXPECT_EQ(c.kind(), Condition::Kind::kFalse);
}

TEST(PruningTest, UnreachableFinalStateIgnored) {
  Buchi ba;
  const StateId island = ba.AddState();
  ba.SetFinal(island);
  ba.AddTransition(island, Label(), island);
  const Condition c = ExtractPruningCondition(ba);
  EXPECT_EQ(c.kind(), Condition::Kind::kFalse);
}

TEST(PruningTest, SimpleReachableLasso) {
  // init --a--> fin with --b--> self loop.
  Buchi ba;
  const StateId fin = ba.AddState();
  ba.SetFinal(fin);
  ba.AddTransition(0, L({{0, false}}), fin);
  ba.AddTransition(fin, L({{1, false}}), fin);
  const Condition c = ExtractPruningCondition(ba);
  // Expect S(b) ∧ S(a) (cycle label ∧ path label), in some association.
  Vocabulary vocab({"a", "b"});
  const std::string s = c.ToString(vocab);
  EXPECT_NE(s.find("S(a)"), std::string::npos);
  EXPECT_NE(s.find("S(b)"), std::string::npos);
  EXPECT_EQ(c.kind(), Condition::Kind::kAnd);
}

TEST(PruningTest, TrueCycleLabelPrunesNothingFromCycle) {
  Buchi ba;
  const StateId fin = ba.AddState();
  ba.SetFinal(fin);
  ba.AddTransition(0, L({{0, false}}), fin);
  ba.AddTransition(fin, Label(), fin);  // true self-loop
  const Condition c = ExtractPruningCondition(ba);
  // cycle condition is TRUE; path condition S(a) remains.
  Vocabulary vocab({"a"});
  EXPECT_EQ(c.ToString(vocab), "S(a)");
}

TEST(PruningTest, Figure2dShape) {
  // Paper Example 9 (Figure 2d): two prefixes (flightCanceled | miss then
  // changeApproved), cycle requires requestChange and changeApproved.
  // Events: 0=flightCanceled, 1=miss, 2=changeApproved, 3=requestChange.
  Buchi ba;
  const StateId s1 = ba.AddState();
  const StateId s2 = ba.AddState();  // final
  const StateId s3 = ba.AddState();
  const StateId s4 = ba.AddState();
  ba.SetFinal(s2);
  ba.AddTransition(0, Label(), 0);                  // * self-loop
  ba.AddTransition(0, L({{0, false}}), s2);         // flightCanceled
  ba.AddTransition(0, L({{1, false}}), s1);         // miss
  ba.AddTransition(s1, Label(), s1);                // * self-loop
  ba.AddTransition(s1, L({{2, false}}), s2);        // changeApproved
  ba.AddTransition(s2, Label(), s3);                // true
  ba.AddTransition(s3, L({{3, false}}), s4);        // requestChange
  ba.AddTransition(s4, L({{2, false}}), s2);        // changeApproved
  const Condition c = ExtractPruningCondition(ba);

  // Build a tiny index to check the candidate algebra of Example 9:
  // a contract must have changeApproved-compatible labels (the only
  // in-SCC incoming label of s2) AND one of the prefixes.
  PrefilterIndex index;
  auto single = [](const Label& label) {
    Buchi one;
    const StateId f = one.AddState();
    one.SetFinal(f);
    one.AddTransition(0, label, f);
    one.AddTransition(f, Label(), f);
    return one;
  };
  Bitset all_events(4);
  all_events.SetAll();
  // Contract 0: has everything.
  Buchi full;
  {
    const StateId f = full.AddState();
    full.SetFinal(f);
    for (EventId e = 0; e < 4; ++e) {
      full.AddTransition(0, L({{e, false}}), f);
    }
    full.AddTransition(f, Label(), f);
  }
  index.Insert(0, full, all_events);
  // Contract 1: cites only flightCanceled — lacks the cycle's
  // changeApproved, which every lasso of the query needs.
  Bitset fc_only(4);
  fc_only.Set(0);
  index.Insert(1, single(L({{0, false}})), fc_only);
  // Contract 2: miss + changeApproved — qualifies via the second prefix.
  Buchi two;
  Bitset miss_ca(4);
  miss_ca.Set(1);
  miss_ca.Set(2);
  {
    const StateId f = two.AddState();
    two.SetFinal(f);
    two.AddTransition(0, L({{1, false}}), f);
    two.AddTransition(0, L({{2, false}}), f);
    two.AddTransition(f, Label(), f);
  }
  index.Insert(2, two, miss_ca);

  const Bitset candidates = c.Evaluate(index);
  EXPECT_TRUE(candidates.Test(0));
  EXPECT_FALSE(candidates.Test(1));  // pruned: no changeApproved
  EXPECT_TRUE(candidates.Test(2));
}

TEST(PruningTest, MultipleFinalStatesUnion) {
  // Two disjoint lassos; a contract compatible with either must survive.
  Buchi ba;
  const StateId f1 = ba.AddState();
  const StateId f2 = ba.AddState();
  ba.SetFinal(f1);
  ba.SetFinal(f2);
  ba.AddTransition(0, L({{0, false}}), f1);
  ba.AddTransition(f1, L({{0, false}}), f1);
  ba.AddTransition(0, L({{1, false}}), f2);
  ba.AddTransition(f2, L({{1, false}}), f2);
  const Condition c = ExtractPruningCondition(ba);
  EXPECT_EQ(c.kind(), Condition::Kind::kOr);
}

TEST(PruningTest, SizeCapDegradesToTrue) {
  // A long alternating chain would produce a large condition; with a tiny
  // cap the extractor must fall back to TRUE (sound, prunes nothing).
  Buchi ba;
  StateId prev = 0;
  for (int i = 0; i < 10; ++i) {
    const StateId a = ba.AddState();
    const StateId b = ba.AddState();
    ba.AddTransition(prev, L({{0, false}}), a);
    ba.AddTransition(prev, L({{1, false}}), b);
    const StateId join = ba.AddState();
    ba.AddTransition(a, L({{2, false}}), join);
    ba.AddTransition(b, L({{3, false}}), join);
    prev = join;
  }
  ba.SetFinal(prev);
  ba.AddTransition(prev, L({{0, false}}), prev);
  PruningOptions tiny;
  tiny.max_condition_size = 3;
  const Condition c = ExtractPruningCondition(ba, tiny);
  EXPECT_LE(c.Size(), 4u);  // degraded, not exponential
}

TEST(PruningTest, StatePathModeIsSoundOnDiamond) {
  // Two parallel prefixes a / b into a final loop on c: both modes must keep
  // contracts compatible with either prefix.
  Buchi ba;
  const StateId mid_a = ba.AddState();
  const StateId mid_b = ba.AddState();
  const StateId fin = ba.AddState();
  ba.SetFinal(fin);
  ba.AddTransition(0, L({{0, false}}), mid_a);
  ba.AddTransition(0, L({{1, false}}), mid_b);
  ba.AddTransition(mid_a, L({{2, false}}), fin);
  ba.AddTransition(mid_b, L({{2, false}}), fin);
  ba.AddTransition(fin, L({{3, false}}), fin);
  for (auto mode : {PathConditionMode::kCondensation,
                    PathConditionMode::kMemoizedStatePaths}) {
    PruningOptions options;
    options.path_mode = mode;
    const Condition c = ExtractPruningCondition(ba, options);
    Vocabulary vocab({"a", "b", "c", "d"});
    const std::string s = c.ToString(vocab);
    EXPECT_NE(s.find("S(a)"), std::string::npos) << s;
    EXPECT_NE(s.find("S(b)"), std::string::npos) << s;
    EXPECT_NE(s.find("S(d)"), std::string::npos) << s;  // cycle label
  }
}

TEST(PruningTest, BoundedCyclesTightensFigure2d) {
  // On Figure 2d the complete cycle condition also demands requestChange,
  // which the incoming-only approximation misses.
  Buchi ba;
  const StateId s2 = ba.AddState();
  const StateId s3 = ba.AddState();
  const StateId s4 = ba.AddState();
  ba.SetFinal(s2);
  ba.AddTransition(0, L({{0, false}}), s2);       // flightCanceled
  ba.AddTransition(s2, Label(), s3);              // true
  ba.AddTransition(s3, L({{3, false}}), s4);      // requestChange
  ba.AddTransition(s4, L({{2, false}}), s2);      // changeApproved
  Vocabulary vocab({"fc", "miss", "ca", "rc"});

  PruningOptions approx;
  const Condition c_approx = ExtractPruningCondition(ba, approx);
  EXPECT_EQ(c_approx.ToString(vocab).find("S(rc)"), std::string::npos);

  PruningOptions complete;
  complete.cycle_mode = CycleConditionMode::kBoundedCycles;
  const Condition c_complete = ExtractPruningCondition(ba, complete);
  const std::string s = c_complete.ToString(vocab);
  EXPECT_NE(s.find("S(rc)"), std::string::npos) << s;
  EXPECT_NE(s.find("S(ca)"), std::string::npos) << s;
}

TEST(PruningTest, BoundedCyclesFallsBackOnHugeScc) {
  // An SCC larger than max_cycle_length must fall back (not silently drop
  // long cycles — that would break necessity).
  Buchi ba;
  std::vector<StateId> ring{0};
  for (int i = 1; i < 20; ++i) ring.push_back(ba.AddState());
  ba.SetFinal(0);
  for (size_t i = 0; i < ring.size(); ++i) {
    ba.AddTransition(ring[i], L({{0, false}}), ring[(i + 1) % ring.size()]);
  }
  PruningOptions options;
  options.cycle_mode = CycleConditionMode::kBoundedCycles;
  options.max_cycle_length = 4;
  const Condition c = ExtractPruningCondition(ba, options);
  // Fallback = incoming approximation: still demands the ring label.
  Vocabulary vocab({"a"});
  EXPECT_NE(c.ToString(vocab).find("S(a)"), std::string::npos);
}

struct PruningModeParam {
  const char* name;
  PathConditionMode path;
  CycleConditionMode cycle;
};

class PruningSoundnessTest
    : public ::testing::TestWithParam<PruningModeParam> {};

/// The master soundness property (§4.1): every contract that permits the
/// query must be in the candidate set computed from the pruning condition —
/// for every mode combination.
TEST_P(PruningSoundnessTest, CandidatesContainAllPermittingContracts) {
  const size_t kEvents = 3;
  ltl::FormulaFactory fac;
  Vocabulary vocab = ctdb::testing::TestVocabulary(kEvents);
  Rng rng(987123);

  struct ContractData {
    Buchi ba;
    Bitset events;
  };
  std::vector<ContractData> contracts;
  PrefilterIndex index;
  for (uint32_t id = 0; id < 30; ++id) {
    const ltl::Formula* cf =
        ctdb::testing::RandomFormula(&rng, &fac, kEvents, 3);
    auto ba = translate::LtlToBuchi(cf, &fac);
    ASSERT_TRUE(ba.ok());
    ContractData c;
    c.ba = std::move(*ba);
    cf->CollectEvents(&c.events);
    c.events.Resize(kEvents);
    index.Insert(id, c.ba, c.events);
    contracts.push_back(std::move(c));
  }

  PruningOptions options;
  options.path_mode = GetParam().path;
  options.cycle_mode = GetParam().cycle;

  int permitted_total = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const ltl::Formula* qf =
        ctdb::testing::RandomFormula(&rng, &fac, kEvents, 3);
    auto qba = translate::LtlToBuchi(qf, &fac);
    ASSERT_TRUE(qba.ok());
    const Condition condition = ExtractPruningCondition(*qba, options);
    const Bitset candidates = condition.Evaluate(index);
    for (uint32_t id = 0; id < contracts.size(); ++id) {
      if (core::Permits(contracts[id].ba, contracts[id].events, *qba)) {
        ++permitted_total;
        EXPECT_TRUE(candidates.Test(id))
            << "query " << qf->ToString(vocab) << " permitted by contract "
            << id << " but pruned";
      }
    }
  }
  EXPECT_GT(permitted_total, 50);  // the property wasn't vacuous
}

INSTANTIATE_TEST_SUITE_P(
    Modes, PruningSoundnessTest,
    ::testing::Values(
        PruningModeParam{"condensation_incoming",
                         PathConditionMode::kCondensation,
                         CycleConditionMode::kIncomingApprox},
        PruningModeParam{"condensation_cycles",
                         PathConditionMode::kCondensation,
                         CycleConditionMode::kBoundedCycles},
        PruningModeParam{"statepaths_incoming",
                         PathConditionMode::kMemoizedStatePaths,
                         CycleConditionMode::kIncomingApprox},
        PruningModeParam{"statepaths_cycles",
                         PathConditionMode::kMemoizedStatePaths,
                         CycleConditionMode::kBoundedCycles}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace ctdb::index
