#include "util/bitset.h"

#include <gtest/gtest.h>

#include <vector>

namespace ctdb {
namespace {

TEST(BitsetTest, EmptyByDefault) {
  Bitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_FALSE(b.Test(0));
  EXPECT_FALSE(b.Test(1000));
}

TEST(BitsetTest, SetClearTest) {
  Bitset b(130);
  EXPECT_TRUE(b.None());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, AllSetRespectsSize) {
  Bitset b = Bitset::AllSet(70);
  EXPECT_EQ(b.Count(), 70u);
  EXPECT_TRUE(b.Test(69));
  EXPECT_FALSE(b.Test(70));
}

TEST(BitsetTest, SetAllClearsTailBits) {
  Bitset b(3);
  b.SetAll();
  EXPECT_EQ(b.Count(), 3u);
  b.ClearAll();
  EXPECT_TRUE(b.None());
}

TEST(BitsetTest, ResizeGrowsAndKeepsBits) {
  Bitset b(10);
  b.Set(9);
  b.Resize(200);
  EXPECT_EQ(b.size(), 200u);
  EXPECT_TRUE(b.Test(9));
  EXPECT_FALSE(b.Test(100));
  // Resize never shrinks.
  b.Resize(5);
  EXPECT_EQ(b.size(), 200u);
}

TEST(BitsetTest, FindNext) {
  Bitset b(200);
  b.Set(3);
  b.Set(64);
  b.Set(199);
  EXPECT_EQ(b.FindNext(0), 3u);
  EXPECT_EQ(b.FindNext(3), 3u);
  EXPECT_EQ(b.FindNext(4), 64u);
  EXPECT_EQ(b.FindNext(65), 199u);
  EXPECT_EQ(b.FindNext(200), Bitset::npos);
  Bitset empty(64);
  EXPECT_EQ(empty.FindNext(0), Bitset::npos);
}

TEST(BitsetTest, IndicesIteration) {
  Bitset b(100);
  b.Set(1);
  b.Set(63);
  b.Set(64);
  b.Set(99);
  std::vector<size_t> got;
  for (size_t i : b.Indices()) got.push_back(i);
  EXPECT_EQ(got, (std::vector<size_t>{1, 63, 64, 99}));
  EXPECT_EQ(b.ToVector(), got);
}

TEST(BitsetTest, UnionGrows) {
  Bitset a(10);
  a.Set(2);
  Bitset b(100);
  b.Set(90);
  a |= b;
  EXPECT_EQ(a.size(), 100u);
  EXPECT_TRUE(a.Test(2));
  EXPECT_TRUE(a.Test(90));
}

TEST(BitsetTest, IntersectionTreatsMissingAsZero) {
  Bitset a(100);
  a.Set(2);
  a.Set(90);
  Bitset b(10);
  b.Set(2);
  a &= b;
  EXPECT_TRUE(a.Test(2));
  EXPECT_FALSE(a.Test(90));
  EXPECT_EQ(a.Count(), 1u);
}

TEST(BitsetTest, Subtract) {
  Bitset a(64);
  a.Set(1);
  a.Set(2);
  Bitset b(64);
  b.Set(2);
  b.Set(3);
  a.Subtract(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_FALSE(a.Test(2));
}

TEST(BitsetTest, DisjointAndSubset) {
  Bitset a(64);
  a.Set(1);
  Bitset b(128);
  b.Set(1);
  b.Set(100);
  EXPECT_FALSE(a.DisjointWith(b));
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  Bitset c(64);
  c.Set(2);
  EXPECT_TRUE(a.DisjointWith(c));
  // Subset with larger self but only zero extra bits.
  Bitset d(256);
  d.Set(1);
  EXPECT_TRUE(d.IsSubsetOf(b));
}

TEST(BitsetTest, EqualityIgnoresCapacity) {
  Bitset a(10);
  a.Set(3);
  Bitset b(1000);
  b.Set(3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(999);
  EXPECT_NE(a, b);
}

TEST(BitsetTest, XorGrows) {
  Bitset a(10);
  a.Set(1);
  a.Set(2);
  Bitset b(20);
  b.Set(2);
  b.Set(15);
  a ^= b;
  EXPECT_TRUE(a.Test(1));
  EXPECT_FALSE(a.Test(2));
  EXPECT_TRUE(a.Test(15));
}

TEST(BitsetTest, ToStringRendersIndices) {
  Bitset b(10);
  b.Set(1);
  b.Set(5);
  EXPECT_EQ(b.ToString(), "{1, 5}");
  EXPECT_EQ(Bitset(4).ToString(), "{}");
}

class BitsetSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitsetSizeTest, CountMatchesSetBitsAtEveryBoundary) {
  const size_t n = GetParam();
  Bitset b(n);
  size_t expected = 0;
  for (size_t i = 0; i < n; i += 3) {
    b.Set(i);
    ++expected;
  }
  EXPECT_EQ(b.Count(), expected);
  // Round-trip through indices.
  size_t seen = 0;
  for (size_t i : b.Indices()) {
    EXPECT_EQ(i % 3, 0u);
    ++seen;
  }
  EXPECT_EQ(seen, expected);
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, BitsetSizeTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 129, 300));

}  // namespace
}  // namespace ctdb
