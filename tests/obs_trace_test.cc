// Trace-stream tests (obs/trace.h): span nesting and attributes, a golden
// JSON-lines trace for one fixed query (timestamps scrubbed, ids
// normalized), ValidateTrace consistency checks, and — following the
// differential_test.cc convention that every oracle must be proven live — a
// fault-injection sink that silently drops one span and must be caught.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "broker/database.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace ctdb::obs {
namespace {

#if CTDB_OBS

/// Installs a sink for the test's scope; always restores the previous one.
class ScopedSink {
 public:
  explicit ScopedSink(TraceSink* sink) : previous_(GetTraceSink()) {
    SetTraceSink(sink);
  }
  ~ScopedSink() { SetTraceSink(previous_); }

 private:
  TraceSink* previous_;
};

/// Reduces a trace to its structural skeleton — "name(parent-name)" in
/// emission order with timestamps/ids dropped — so golden comparisons are
/// stable across machines and runs.
std::vector<std::string> Skeleton(const std::vector<TraceEvent>& events) {
  std::vector<std::string> out;
  for (const TraceEvent& e : events) {
    std::string parent = "-";
    for (const TraceEvent& p : events) {
      if (p.span_id == e.parent_id) {
        parent = p.name;
        break;
      }
    }
    out.push_back(e.name + "(" + parent + ")");
  }
  return out;
}

TEST(ObsTraceTest, SpansNestAndEmitChildFirst) {
  VectorSink sink;
  ScopedSink scoped(&sink);
  {
    TraceSpan root("root");
    root.AddAttr("k", 7);
    {
      TraceSpan child("child");
      TraceSpan grandchild("grandchild");
    }
    TraceSpan sibling("sibling");
  }
  const std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 4u);
  // Destruction order: grandchild, child, sibling, root.
  EXPECT_EQ(events[0].name, "grandchild");
  EXPECT_EQ(events[1].name, "child");
  EXPECT_EQ(events[2].name, "sibling");
  EXPECT_EQ(events[3].name, "root");
  EXPECT_EQ(events[0].parent_id, events[1].span_id);
  EXPECT_EQ(events[1].parent_id, events[3].span_id);
  EXPECT_EQ(events[2].parent_id, events[3].span_id);
  EXPECT_EQ(events[3].parent_id, 0u);       // root
  EXPECT_EQ(events[3].children, 2u);        // child + sibling
  EXPECT_EQ(events[1].children, 1u);        // grandchild
  ASSERT_EQ(events[3].attrs.size(), 1u);
  EXPECT_EQ(events[3].attrs[0].first, "k");
  EXPECT_EQ(events[3].attrs[0].second, 7u);
  EXPECT_TRUE(ValidateTrace(events).empty());
}

TEST(ObsTraceTest, NoSinkMeansInactiveSpans) {
  ASSERT_EQ(GetTraceSink(), nullptr);
  TraceSpan span("untraced");
  EXPECT_FALSE(span.active());
}

TEST(ObsTraceTest, FormatTraceEventIsJson) {
  TraceEvent e;
  e.name = "with\"quote";
  e.span_id = 3;
  e.parent_id = 1;
  e.children = 0;
  e.attrs.emplace_back("candidates", 12);
  const std::string json = FormatTraceEvent(e);
  EXPECT_NE(json.find("\"with\\\"quote\""), std::string::npos);
  EXPECT_NE(json.find("\"candidates\":12"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ObsTraceTest, JsonLinesSinkWritesOneObjectPerLine) {
  std::ostringstream out;
  JsonLinesSink sink(&out);
  ScopedSink scoped(&sink);
  {
    TraceSpan root("a");
    TraceSpan child("b");
  }
  std::istringstream lines(out.str());
  std::string line;
  size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(n, 2u);
}

// The golden trace of one fixed query against a fixed two-contract
// database. The skeleton (names + parentage in emission order) is part of
// the observability contract: a renamed or dropped pipeline span breaks
// consumers, so changing it must be a conscious act.
TEST(ObsTraceTest, GoldenQueryTraceSkeleton) {
  const bool was_enabled = Enabled();
  SetEnabled(true);
  VectorSink sink;
  ScopedSink scoped(&sink);

  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("allows", "G(p -> F q)").ok());
  ASSERT_TRUE(db.Register("forbids_q", "G(!q)").ok());
  sink.Clear();  // registration spans checked elsewhere; golden = query only

  ASSERT_TRUE(db.Query("F q").ok());
  SetEnabled(was_enabled);

  const std::vector<TraceEvent> events = sink.Events();
  EXPECT_TRUE(ValidateTrace(events).empty());
  const std::vector<std::string> golden = {
      "translate(query)",
      "query.prefilter(query)",
      "query.permission(query)",
      "query(-)",
  };
  EXPECT_EQ(Skeleton(events), golden);

  // The query root carries the outcome as attributes.
  const TraceEvent& root = events.back();
  ASSERT_EQ(root.attrs.size(), 2u);
  EXPECT_EQ(root.attrs[0].first, "candidates");
  EXPECT_EQ(root.attrs[1].first, "matches");
  EXPECT_EQ(root.attrs[1].second, 1u);
}

TEST(ObsTraceTest, GoldenRegistrationTraceSkeleton) {
  const bool was_enabled = Enabled();
  SetEnabled(true);
  VectorSink sink;
  ScopedSink scoped(&sink);

  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("allows", "G(p -> F q)").ok());
  SetEnabled(was_enabled);

  const std::vector<TraceEvent> events = sink.Events();
  EXPECT_TRUE(ValidateTrace(events).empty());
  const std::vector<std::string> golden = {
      "translate(register)",
      "register.projections(register.automaton)",
      "register.prefilter_insert(register.automaton)",
      "register.automaton(register)",
      "register(-)",
  };
  EXPECT_EQ(Skeleton(events), golden);
}

/// Forwards to a VectorSink but silently swallows the first event whose
/// name matches — the deliberate fault that must not go unnoticed.
class DroppingSink : public TraceSink {
 public:
  DroppingSink(VectorSink* inner, std::string drop)
      : inner_(inner), drop_(std::move(drop)) {}
  void Emit(const TraceEvent& event) override {
    if (!dropped_ && event.name == drop_) {
      dropped_ = true;
      return;
    }
    inner_->Emit(event);
  }
  bool dropped() const { return dropped_; }

 private:
  VectorSink* inner_;
  std::string drop_;
  bool dropped_ = false;
};

// "Prove the oracle is live" (differential_test.cc convention): a trace with
// a deliberately dropped span must fail validation — otherwise the clean
// golden tests above would pass vacuously on a broken validator.
TEST(ObsTraceTest, ValidatorCatchesDroppedSpan) {
  VectorSink inner;
  DroppingSink dropping(&inner, "query.prefilter");
  ScopedSink scoped(&dropping);

  const bool was_enabled = Enabled();
  SetEnabled(true);
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("allows", "G(p -> F q)").ok());
  inner.Clear();
  ASSERT_TRUE(db.Query("F q").ok());
  SetEnabled(was_enabled);

  ASSERT_TRUE(dropping.dropped());  // the fault was actually injected
  const std::vector<std::string> violations = ValidateTrace(inner.Events());
  ASSERT_FALSE(violations.empty())
      << "a silently dropped span went undetected";
}

TEST(ObsTraceTest, ValidatorCatchesSyntheticCorruption) {
  // Duplicated ids and phantom parents, independent of the broker pipeline.
  TraceEvent a;
  a.name = "a";
  a.span_id = 1;
  TraceEvent b = a;  // duplicate id
  EXPECT_FALSE(ValidateTrace({a, b}).empty());

  TraceEvent orphan;
  orphan.name = "orphan";
  orphan.span_id = 2;
  orphan.parent_id = 99;  // no such span
  EXPECT_FALSE(ValidateTrace({orphan}).empty());

  EXPECT_TRUE(ValidateTrace({}).empty());
}

#endif  // CTDB_OBS

}  // namespace
}  // namespace ctdb::obs
