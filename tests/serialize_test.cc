#include "automata/serialize.h"

#include <gtest/gtest.h>

#include "automata/word.h"
#include "testing/generators.h"

namespace ctdb::automata {
namespace {

Label L(std::initializer_list<Literal> lits) {
  return Label::FromLiterals(std::vector<Literal>(lits));
}

TEST(SerializeTest, RoundTripSmallAutomaton) {
  Vocabulary vocab({"miss", "refund"});
  Buchi ba;
  const StateId s1 = ba.AddState();
  const StateId s2 = ba.AddState();
  ba.SetFinal(s2);
  ba.AddTransition(0, Label(), 0);
  ba.AddTransition(0, L({{0, false}, {1, true}}), s1);
  ba.AddTransition(s1, L({{1, false}}), s2);
  ba.AddTransition(s2, Label(), s2);

  const std::string text = Serialize(ba, vocab);
  Vocabulary vocab2;
  auto parsed = Deserialize(text, &vocab2);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->StateCount(), ba.StateCount());
  EXPECT_EQ(parsed->TransitionCount(), ba.TransitionCount());
  EXPECT_EQ(parsed->initial(), ba.initial());
  EXPECT_EQ(parsed->FinalCount(), 1u);
  EXPECT_TRUE(parsed->IsFinal(s2));
  // Vocabulary re-interned in first-seen order must reproduce labels: check
  // by comparing re-serialized text.
  EXPECT_EQ(Serialize(*parsed, vocab2), text);
}

TEST(SerializeTest, RoundTripPreservesLanguageOnRandomAutomata) {
  Rng rng(321);
  Vocabulary vocab({"a", "b", "c"});
  for (int trial = 0; trial < 30; ++trial) {
    Buchi ba;
    const size_t n = 2 + rng.Uniform(5);
    ba.AddStates(n - 1);
    for (size_t s = 0; s < n; ++s) {
      if (rng.Chance(0.5)) ba.SetFinal(static_cast<StateId>(s));
      for (size_t t = 0; t < 3; ++t) {
        Label label;
        for (EventId e = 0; e < 3; ++e) {
          const uint64_t pick = rng.Uniform(3);
          if (pick == 1) label.AddPositive(e);
          if (pick == 2) label.AddNegative(e);
        }
        ba.AddTransition(static_cast<StateId>(s), label,
                         static_cast<StateId>(rng.Uniform(n)));
      }
    }
    Vocabulary vocab2({"a", "b", "c"});
    auto parsed = Deserialize(Serialize(ba, vocab), &vocab2);
    ASSERT_TRUE(parsed.ok());
    for (int w = 0; w < 10; ++w) {
      const LassoWord word = ctdb::testing::RandomWord(&rng, 3, 2, 3);
      EXPECT_EQ(AcceptsWord(ba, word), AcceptsWord(*parsed, word));
    }
  }
}

TEST(SerializeTest, RejectsMalformedInput) {
  Vocabulary vocab;
  EXPECT_FALSE(Deserialize("", &vocab).ok());
  EXPECT_FALSE(Deserialize("ba states=0 initial=0\nend\n", &vocab).ok());
  EXPECT_FALSE(Deserialize("ba states=2 initial=5\nend\n", &vocab).ok());
  EXPECT_FALSE(Deserialize("t 0 0 x\nend\n", &vocab).ok());  // missing header
  EXPECT_FALSE(
      Deserialize("ba states=1 initial=0\nt 0 5 x\nend\n", &vocab).ok());
  EXPECT_FALSE(Deserialize("ba states=1 initial=0\n", &vocab).ok());  // no end
  EXPECT_FALSE(
      Deserialize("ba states=1 initial=0\nfinals 3\nend\n", &vocab).ok());
  EXPECT_FALSE(
      Deserialize("ba states=1 initial=0\nend\nt 0 0 x\n", &vocab).ok());
  EXPECT_FALSE(
      Deserialize("ba states=1 initial=0\nwhat\nend\n", &vocab).ok());
}

TEST(SerializeTest, AcceptsCommentsAndBlankLines) {
  Vocabulary vocab;
  auto parsed = Deserialize(
      "# contract A\n\nba states=1 initial=0\nfinals 0\n\nt 0 0 true\nend\n",
      &vocab);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->IsFinal(0));
  EXPECT_EQ(parsed->TransitionCount(), 1u);
}

}  // namespace
}  // namespace ctdb::automata
