#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace ctdb::util {
namespace {

TEST(ArenaTest, AllocateReturnsAlignedPointers) {
  Arena arena;
  for (size_t align : {1, 2, 4, 8, 16, 32, 64}) {
    void* p = arena.Allocate(3, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(/*block_bytes=*/128);
  std::vector<unsigned char*> ptrs;
  for (int i = 0; i < 100; ++i) {
    auto* p = static_cast<unsigned char*>(arena.Allocate(16));
    std::memset(p, i, 16);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 100; ++i) {
    for (size_t j = 0; j < 16; ++j) {
      EXPECT_EQ(ptrs[i][j], static_cast<unsigned char>(i));
    }
  }
}

TEST(ArenaTest, ZeroByteAllocationYieldsDistinctPointers) {
  Arena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, b);
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedBlock) {
  Arena arena(/*block_bytes=*/64);
  auto* big = static_cast<unsigned char*>(arena.Allocate(1000));
  std::memset(big, 0xAB, 1000);
  EXPECT_GE(arena.BytesReserved(), 1000u);
  // The arena stays usable for small allocations afterwards.
  void* small = arena.Allocate(8);
  EXPECT_NE(small, nullptr);
}

TEST(ArenaTest, NewConstructsTriviallyDestructibleValues) {
  struct Point {
    int x;
    int y;
  };
  Arena arena;
  Point* p = arena.New<Point>(3, 4);
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(Point), 0u);
}

TEST(ArenaTest, CopyArrayDuplicatesContents) {
  Arena arena;
  const uint32_t source[] = {7, 8, 9, 10};
  const uint32_t* copy = arena.CopyArray(source, 4);
  EXPECT_NE(copy, source);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(copy[i], source[i]);
}

TEST(ArenaTest, CountersTrackAllocations) {
  Arena arena(/*block_bytes=*/256);
  EXPECT_EQ(arena.BytesAllocated(), 0u);
  arena.Allocate(100, 1);
  EXPECT_GE(arena.BytesAllocated(), 100u);
  EXPECT_GE(arena.BytesReserved(), arena.BytesAllocated());
  EXPECT_GE(arena.BlockCount(), 1u);
}

TEST(ArenaTest, ResetReclaimsSpaceAndRetainsABlock) {
  Arena arena(/*block_bytes=*/256);
  for (int i = 0; i < 50; ++i) arena.Allocate(64);
  const size_t reserved_before = arena.BytesReserved();
  arena.Reset();
  EXPECT_EQ(arena.BytesAllocated(), 0u);
  EXPECT_LE(arena.BlockCount(), 1u);
  EXPECT_LE(arena.BytesReserved(), reserved_before);
  // Memory handed out after Reset may alias the old block — ownership of
  // prior allocations ended at Reset. It must be writable.
  auto* p = static_cast<unsigned char*>(arena.Allocate(64));
  std::memset(p, 0xCD, 64);
  EXPECT_EQ(p[63], 0xCD);
}

TEST(ArenaTest, MoveTransfersOwnership) {
  Arena a(/*block_bytes=*/128);
  auto* p = static_cast<unsigned char*>(a.Allocate(32));
  std::memset(p, 0x5A, 32);
  const size_t allocated = a.BytesAllocated();

  Arena b = std::move(a);
  EXPECT_EQ(b.BytesAllocated(), allocated);
  EXPECT_EQ(p[31], 0x5A);  // the block moved, not the bytes
  EXPECT_EQ(a.BytesAllocated(), 0u);  // NOLINT(bugprone-use-after-move)
  // The moved-from arena is reusable.
  EXPECT_NE(a.Allocate(8), nullptr);
}

}  // namespace
}  // namespace ctdb::util
