// End-to-end tests for the durable broker: register/close/recover round
// trips, checkpoint-driven log truncation, fallback past corrupt
// checkpoints, torn-tail truncation, sequence-gap detection, automatic
// checkpoints, and the crash-safe SaveDatabaseToFile.

#include "broker/durable.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "broker/persistence.h"
#include "testing/temp_dir.h"
#include "util/file_util.h"
#include "wal/segment.h"
#include "wal/wal.h"

namespace ctdb::broker {
namespace {

using ::ctdb::testing::TempDir;

wal::DurabilityOptions FastOptions() {
  wal::DurabilityOptions options;
  options.fsync_policy = wal::FsyncPolicy::kNever;  // tests survive exit()
  options.group_commit_window = std::chrono::microseconds(50);
  return options;
}

std::string NthName(int i) { return "contract-" + std::to_string(i); }
std::string NthLtl(int i) {
  // Distinct but always-parseable formulas over a small shared vocabulary.
  switch (i % 3) {
    case 0: return "F pay";
    case 1: return "G(request -> F grant)";
    default: return "pay U deliver";
  }
}

void RegisterN(DurableDatabase* db, int n, int offset = 0) {
  for (int i = offset; i < offset + n; ++i) {
    auto id = db->Register(NthName(i), NthLtl(i));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(*id, static_cast<uint32_t>(i));
  }
}

void ExpectContracts(const DurableDatabase& db, int n) {
  ASSERT_EQ(db.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(db.contract(static_cast<uint32_t>(i)).name, NthName(i));
    EXPECT_EQ(db.contract(static_cast<uint32_t>(i)).ltl_text, NthLtl(i));
  }
}

TEST(DurabilityTest, FreshDirectoryStartsEmpty) {
  TempDir dir("durable");
  auto db = DurableDatabase::Open(dir.file("wal"), FastOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->size(), 0u);
  EXPECT_EQ((*db)->recovery_stats().last_sequence, 0u);
  EXPECT_EQ((*db)->recovery_stats().next_segment_index, 1u);
}

TEST(DurabilityTest, RegisterCloseRecoverRoundTrip) {
  TempDir dir("durable");
  {
    auto db = DurableDatabase::Open(dir.path(), FastOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    RegisterN(db->get(), 10);
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto db = DurableDatabase::Open(dir.path(), FastOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ExpectContracts(**db, 10);
  EXPECT_EQ((*db)->recovery_stats().records_replayed, 10u);
  EXPECT_FALSE((*db)->recovery_stats().tail_truncated);

  // Recovered contracts answer queries like freshly registered ones.
  auto result = (*db)->Query("F pay");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->matches.empty());

  // And the log keeps extending across generations.
  RegisterN(db->get(), 5, /*offset=*/10);
  ASSERT_TRUE((*db)->Close().ok());
  auto again = DurableDatabase::Open(dir.path(), FastOptions());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ExpectContracts(**again, 15);
}

TEST(DurabilityTest, RegisterBatchIsDurable) {
  TempDir dir("durable");
  {
    auto db = DurableDatabase::Open(dir.path(), FastOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    std::vector<ContractDatabase::BatchEntry> entries;
    for (int i = 0; i < 8; ++i) entries.push_back({NthName(i), NthLtl(i)});
    auto ids = (*db)->RegisterBatch(entries);
    ASSERT_TRUE(ids.ok()) << ids.status().ToString();
    ASSERT_EQ(ids->size(), 8u);
  }  // destructor closes
  auto db = DurableDatabase::Open(dir.path(), FastOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ExpectContracts(**db, 8);
}

TEST(DurabilityTest, RegisterAfterCloseFails) {
  TempDir dir("durable");
  auto db = DurableDatabase::Open(dir.path(), FastOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Close().ok());
  EXPECT_FALSE((*db)->Register("late", "F pay").ok());
}

TEST(DurabilityTest, CheckpointTruncatesLogAndSpeedsRecovery) {
  TempDir dir("durable");
  {
    auto db = DurableDatabase::Open(dir.path(), FastOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    RegisterN(db->get(), 12);
    ASSERT_TRUE((*db)->Checkpoint().ok());
    RegisterN(db->get(), 4, /*offset=*/12);
    ASSERT_TRUE((*db)->Close().ok());
  }
  // The checkpoint file exists and the pre-checkpoint segment is gone.
  auto names = util::ListDir(dir.path());
  ASSERT_TRUE(names.ok());
  EXPECT_NE(std::find(names->begin(), names->end(), CheckpointFileName(12)),
            names->end());
  uint64_t idx = 0;
  for (const std::string& name : *names) {
    if (wal::ParseSegmentFileName(name, &idx)) {
      EXPECT_GT(idx, 1u) << name << " should have been truncated";
    }
  }

  RecoveryStats stats;
  auto recovered = RecoverDatabase(dir.path(), {}, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->size(), 16u);
  EXPECT_EQ(stats.checkpoint_sequence, 12u);
  EXPECT_EQ(stats.checkpoint_file, CheckpointFileName(12));
  EXPECT_EQ(stats.records_replayed, 4u);
  EXPECT_EQ(stats.checkpoints_skipped, 0u);
}

TEST(DurabilityTest, SecondCheckpointDeletesTheFirst) {
  TempDir dir("durable");
  auto db = DurableDatabase::Open(dir.path(), FastOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  RegisterN(db->get(), 3);
  ASSERT_TRUE((*db)->Checkpoint().ok());
  RegisterN(db->get(), 3, /*offset=*/3);
  ASSERT_TRUE((*db)->Checkpoint().ok());
  ASSERT_TRUE((*db)->Close().ok());

  auto names = util::ListDir(dir.path());
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(std::find(names->begin(), names->end(), CheckpointFileName(3)),
            names->end())
      << "superseded checkpoint still on disk";
  EXPECT_NE(std::find(names->begin(), names->end(), CheckpointFileName(6)),
            names->end());

  auto recovered = DurableDatabase::Open(dir.path(), FastOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectContracts(**recovered, 6);
  EXPECT_EQ((*recovered)->recovery_stats().checkpoint_sequence, 6u);
}

TEST(DurabilityTest, BogusNewerCheckpointIsSkipped) {
  TempDir dir("durable");
  {
    auto db = DurableDatabase::Open(dir.path(), FastOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    RegisterN(db->get(), 5);
    ASSERT_TRUE((*db)->Close().ok());
  }
  // A corrupt "newer" checkpoint must not poison recovery: it is skipped
  // and the full log replay still reconstructs everything.
  ASSERT_TRUE(
      util::WriteFileAtomic(dir.file(CheckpointFileName(99)), "garbage").ok());
  RecoveryStats stats;
  auto db = RecoverDatabase(dir.path(), {}, &stats);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->size(), 5u);
  EXPECT_EQ(stats.checkpoints_skipped, 1u);
  EXPECT_EQ(stats.checkpoint_sequence, 0u);
  EXPECT_EQ(stats.records_replayed, 5u);
}

TEST(DurabilityTest, CheckpointWithWrongSizeIsSkipped) {
  // A checkpoint image that loads but does not match the sequence its file
  // name claims (e.g. a partially effective rename juggle) is rejected.
  TempDir dir("durable");
  {
    auto db = DurableDatabase::Open(dir.path(), FastOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    RegisterN(db->get(), 4);
    ASSERT_TRUE((*db)->Close().ok());
  }
  {
    auto db = RecoverDatabase(dir.path());
    ASSERT_TRUE(db.ok());
    // Save a 4-contract image under a name claiming 7 registrations.
    ASSERT_TRUE(
        SaveDatabaseToFile(**db, dir.file(CheckpointFileName(7))).ok());
  }
  RecoveryStats stats;
  auto db = RecoverDatabase(dir.path(), {}, &stats);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->size(), 4u);
  EXPECT_EQ(stats.checkpoints_skipped, 1u);
}

TEST(DurabilityTest, TornTailRecoversAckedPrefix) {
  TempDir dir("durable");
  {
    auto db = DurableDatabase::Open(dir.path(), FastOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    RegisterN(db->get(), 6);
    ASSERT_TRUE((*db)->Close().ok());
  }
  // Garbage after the last record: recovery truncates and keeps all 6.
  {
    std::ofstream out(dir.file(wal::SegmentFileName(1)),
                      std::ios::app | std::ios::binary);
    out << "\x01\x02partial frame junk";
  }
  RecoveryStats stats;
  auto db = RecoverDatabase(dir.path(), {}, &stats);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->size(), 6u);
  EXPECT_TRUE(stats.tail_truncated);
  // The writer must not resume inside the torn file.
  EXPECT_EQ(stats.next_segment_index, 2u);
}

TEST(DurabilityTest, TruncatedTailDropsOnlyUnackedSuffix) {
  TempDir dir("durable");
  {
    auto db = DurableDatabase::Open(dir.path(), FastOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    RegisterN(db->get(), 6);
    ASSERT_TRUE((*db)->Close().ok());
  }
  const std::string segment = dir.file(wal::SegmentFileName(1));
  auto data = util::ReadFileToString(segment);
  ASSERT_TRUE(data.ok());
  // Cut into the middle of the last frame (simulating a torn final write).
  ASSERT_TRUE(util::WriteFileAtomic(segment,
                                    data->substr(0, data->size() - 5)).ok());
  RecoveryStats stats;
  auto db = RecoverDatabase(dir.path(), {}, &stats);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->size(), 5u);
  EXPECT_TRUE(stats.tail_truncated);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ((*db)->contract(static_cast<uint32_t>(i)).name, NthName(i));
  }
}

TEST(DurabilityTest, MidLogCorruptionIsReportedNotSwallowed) {
  TempDir dir("durable");
  {
    auto db = DurableDatabase::Open(dir.path(), FastOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    RegisterN(db->get(), 6);
    ASSERT_TRUE((*db)->Close().ok());
  }
  const std::string segment = dir.file(wal::SegmentFileName(1));
  auto data = util::ReadFileToString(segment);
  ASSERT_TRUE(data.ok());
  // Flip a byte in the FIRST record's payload; later records stay valid, so
  // this is mid-log damage and must be Corruption, not a 0-contract "ok".
  std::string corrupted = *data;
  corrupted[wal::kSegmentMagic.size() + wal::kFrameHeaderBytes + 2] ^= 0x10;
  ASSERT_TRUE(util::WriteFileAtomic(segment, corrupted).ok());
  auto db = RecoverDatabase(dir.path());
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption()) << db.status().ToString();
}

TEST(DurabilityTest, MissingMiddleSegmentIsCorruption) {
  TempDir dir("durable");
  wal::DurabilityOptions options = FastOptions();
  options.segment_bytes = 128;  // force several segments
  {
    auto db = DurableDatabase::Open(dir.path(), options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    RegisterN(db->get(), 12);
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto names = util::ListDir(dir.path());
  ASSERT_TRUE(names.ok());
  std::vector<uint64_t> indices;
  uint64_t idx = 0;
  for (const std::string& name : *names) {
    if (wal::ParseSegmentFileName(name, &idx)) indices.push_back(idx);
  }
  std::sort(indices.begin(), indices.end());
  ASSERT_GE(indices.size(), 3u) << "expected rotation to several segments";
  // Removing a middle segment rips acknowledged records out of the middle
  // of the log; the sequence-continuity check must refuse to recover.
  ASSERT_TRUE(util::RemoveFileIfExists(
                  dir.file(wal::SegmentFileName(indices[1]))).ok());
  auto db = RecoverDatabase(dir.path());
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption()) << db.status().ToString();
}

TEST(DurabilityTest, AutomaticCheckpointTriggersOnLogGrowth) {
  TempDir dir("durable");
  wal::DurabilityOptions options = FastOptions();
  options.checkpoint_log_bytes = 1;  // every registration crosses it
  auto db = DurableDatabase::Open(dir.path(), options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  RegisterN(db->get(), 3);
  // The checkpoint runs on a background thread; poll for its file.
  bool seen = false;
  for (int i = 0; i < 200 && !seen; ++i) {
    auto names = util::ListDir(dir.path());
    ASSERT_TRUE(names.ok());
    for (const std::string& name : *names) {
      uint64_t seq = 0;
      if (ParseCheckpointFileName(name, &seq)) seen = true;
    }
    if (!seen) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(seen) << "no automatic checkpoint within 2s";
  ASSERT_TRUE((*db)->Close().ok());
  auto recovered = DurableDatabase::Open(dir.path(), options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectContracts(**recovered, 3);
}

TEST(DurabilityTest, ConcurrentRegistrationsAllRecover) {
  TempDir dir("durable");
  {
    auto db = DurableDatabase::Open(dir.path(), FastOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&db, t] {
        for (int i = 0; i < kPerThread; ++i) {
          auto id = (*db)->Register(
              "t" + std::to_string(t) + "-" + std::to_string(i), "F pay");
          EXPECT_TRUE(id.ok()) << id.status().ToString();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ((*db)->size(), static_cast<size_t>(kThreads * kPerThread));
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto db = DurableDatabase::Open(dir.path(), FastOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->size(), 40u);
}

TEST(DurabilityTest, CheckpointFileNameRoundTrip) {
  EXPECT_EQ(CheckpointFileName(12), "checkpoint-000000000012.ctdb");
  uint64_t seq = 0;
  ASSERT_TRUE(ParseCheckpointFileName("checkpoint-000000000012.ctdb", &seq));
  EXPECT_EQ(seq, 12u);
  EXPECT_FALSE(ParseCheckpointFileName("checkpoint-12.tmp", &seq));
  EXPECT_FALSE(ParseCheckpointFileName("wal-000000000012.log", &seq));
  EXPECT_FALSE(ParseCheckpointFileName("checkpoint-.ctdb", &seq));
}

TEST(DurabilityTest, SaveDatabaseToFileIsAtomicAndLeavesNoTemp) {
  TempDir dir("durable");
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "F pay").ok());
  const std::string path = dir.file("image.ctdb");
  ASSERT_TRUE(SaveDatabaseToFile(db, path).ok());
  auto loaded = LoadDatabaseFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->size(), 1u);

  // Overwrite with a bigger database: the temp file must be gone and the
  // image must be the complete new one.
  ASSERT_TRUE(db.Register("b", "G(request -> F grant)").ok());
  ASSERT_TRUE(SaveDatabaseToFile(db, path).ok());
  EXPECT_TRUE(util::ReadFileToString(path + ".tmp").status().IsNotFound());
  loaded = LoadDatabaseFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->size(), 2u);
}

}  // namespace
}  // namespace ctdb::broker
