#include "ltl/formula.h"

#include <gtest/gtest.h>

namespace ctdb::ltl {
namespace {

class FormulaTest : public ::testing::Test {
 protected:
  FormulaTest() : vocab_({"p", "q", "r"}) {}
  Vocabulary vocab_;
  FormulaFactory fac_;
};

TEST_F(FormulaTest, HashConsingSharesStructure) {
  const Formula* a = fac_.And(fac_.Prop(0), fac_.Prop(1));
  const Formula* b = fac_.And(fac_.Prop(0), fac_.Prop(1));
  EXPECT_EQ(a, b);
  const Formula* c = fac_.And(fac_.Prop(1), fac_.Prop(0));
  EXPECT_NE(a, c);  // syntactic, not commutative
}

TEST_F(FormulaTest, ConstantFolding) {
  const Formula* p = fac_.Prop(0);
  EXPECT_EQ(fac_.And(fac_.True(), p), p);
  EXPECT_EQ(fac_.And(p, fac_.False()), fac_.False());
  EXPECT_EQ(fac_.Or(fac_.False(), p), p);
  EXPECT_EQ(fac_.Or(p, fac_.True()), fac_.True());
  EXPECT_EQ(fac_.And(p, p), p);
  EXPECT_EQ(fac_.Or(p, p), p);
  EXPECT_EQ(fac_.Not(fac_.Not(p)), p);
  EXPECT_EQ(fac_.Not(fac_.True()), fac_.False());
  EXPECT_EQ(fac_.Next(fac_.True()), fac_.True());
  EXPECT_EQ(fac_.Finally(fac_.Finally(p)), fac_.Finally(p));
  EXPECT_EQ(fac_.Globally(fac_.Globally(p)), fac_.Globally(p));
  EXPECT_EQ(fac_.Until(fac_.False(), p), p);
  EXPECT_EQ(fac_.Until(p, fac_.True()), fac_.True());
  EXPECT_EQ(fac_.Release(fac_.True(), p), p);
  EXPECT_EQ(fac_.Release(p, fac_.False()), fac_.False());
  EXPECT_EQ(fac_.Implies(fac_.True(), p), p);
  EXPECT_EQ(fac_.Implies(fac_.False(), p), fac_.True());
  EXPECT_EQ(fac_.Iff(p, p), fac_.True());
}

TEST_F(FormulaTest, SizeCountsNodes) {
  const Formula* f =
      fac_.Globally(fac_.Implies(fac_.Prop(0), fac_.Finally(fac_.Prop(1))));
  // G, ->, p, F, q
  EXPECT_EQ(f->Size(), 5u);
}

TEST_F(FormulaTest, CollectEvents) {
  const Formula* f =
      fac_.Until(fac_.Prop(2), fac_.And(fac_.Prop(0), fac_.Not(fac_.Prop(2))));
  Bitset events;
  f->CollectEvents(&events);
  EXPECT_TRUE(events.Test(0));
  EXPECT_FALSE(events.Test(1));
  EXPECT_TRUE(events.Test(2));
}

TEST_F(FormulaTest, IsTemporal) {
  EXPECT_FALSE(fac_.And(fac_.Prop(0), fac_.Not(fac_.Prop(1)))->IsTemporal());
  EXPECT_TRUE(fac_.Next(fac_.Prop(0))->IsTemporal());
  EXPECT_TRUE(fac_.Or(fac_.Prop(0), fac_.Until(fac_.Prop(0), fac_.Prop(1)))
                  ->IsTemporal());
}

TEST_F(FormulaTest, ToStringMinimalParens) {
  const Formula* p = fac_.Prop(0);
  const Formula* q = fac_.Prop(1);
  EXPECT_EQ(fac_.Globally(fac_.Not(p))->ToString(vocab_), "G !p");
  EXPECT_EQ(fac_.And(p, fac_.Or(q, p))->ToString(vocab_), "p & (q | p)");
  EXPECT_EQ(fac_.Until(p, q)->ToString(vocab_), "p U q");
  EXPECT_EQ(fac_.Implies(p, fac_.Finally(q))->ToString(vocab_), "p -> F q");
  EXPECT_EQ(fac_.Next(fac_.Not(fac_.Finally(q)))->ToString(vocab_),
            "X !F q");
}

TEST_F(FormulaTest, AndAllOrAll) {
  const Formula* p = fac_.Prop(0);
  const Formula* q = fac_.Prop(1);
  EXPECT_EQ(fac_.AndAll({}), fac_.True());
  EXPECT_EQ(fac_.OrAll({}), fac_.False());
  EXPECT_EQ(fac_.AndAll({p}), p);
  EXPECT_EQ(fac_.AndAll({p, q}), fac_.And(p, q));
}

TEST_F(FormulaTest, MakeDispatch) {
  const Formula* p = fac_.Prop(0);
  const Formula* q = fac_.Prop(1);
  EXPECT_EQ(fac_.Make(Op::kUntil, p, q), fac_.Until(p, q));
  EXPECT_EQ(fac_.Make(Op::kNot, p, nullptr), fac_.Not(p));
  EXPECT_EQ(fac_.Make(Op::kWeakUntil, p, q), fac_.WeakUntil(p, q));
  EXPECT_EQ(fac_.Make(Op::kBefore, p, q), fac_.Before(p, q));
}

TEST_F(FormulaTest, OpClassification) {
  EXPECT_TRUE(IsUnary(Op::kNot));
  EXPECT_TRUE(IsUnary(Op::kGlobally));
  EXPECT_FALSE(IsUnary(Op::kUntil));
  EXPECT_TRUE(IsBinary(Op::kUntil));
  EXPECT_TRUE(IsBinaryTemporal(Op::kBefore));
  EXPECT_FALSE(IsBinaryTemporal(Op::kAnd));
}

}  // namespace
}  // namespace ctdb::ltl
