// End-to-end observability coverage: after registering contracts and
// evaluating queries (serial and batched-parallel), the metrics snapshot
// must report non-zero activity for every instrumented pipeline layer —
// translate, prefilter, permission, projection, thread pool, and broker.
// This is the acceptance check that no layer's instrumentation silently
// rotted out of the build.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "broker/database.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace ctdb::broker {
namespace {

#if CTDB_OBS

class ObsPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::Enabled();
    obs::SetEnabled(true);
    before_ = obs::MetricsRegistry::Default()->Snapshot();
  }
  void TearDown() override { obs::SetEnabled(was_enabled_); }

  /// Counter delta since SetUp (the registry is process-global and other
  /// tests in this binary write to it too, so we always diff).
  uint64_t CounterDelta(const obs::MetricsSnapshot& after,
                        std::string_view name) const {
    return after.CounterValue(name) - before_.CounterValue(name);
  }

  uint64_t HistCountDelta(const obs::MetricsSnapshot& after,
                          std::string_view name) const {
    const obs::HistogramSnapshot* now = after.FindHistogram(name);
    const obs::HistogramSnapshot* then = before_.FindHistogram(name);
    return (now ? now->count : 0) - (then ? then->count : 0);
  }

  bool was_enabled_ = true;
  obs::MetricsSnapshot before_;
};

TEST_F(ObsPipelineTest, AllSixLayersReportAfterSerialQueries) {
  DatabaseOptions options;
  ContractDatabase db(options);
  ASSERT_TRUE(db.Register("a", "G(p -> F q)").ok());
  ASSERT_TRUE(db.Register("b", "G(!r)").ok());
  ASSERT_TRUE(db.Register("c", "G(q -> F p)").ok());
  for (const char* q : {"F q", "F p", "G(!q)"}) {
    ASSERT_TRUE(db.Query(q).ok());
  }

  const obs::MetricsSnapshot after = db.MetricsSnapshot();

  // 1. translate: contracts + queries were all translated.
  EXPECT_GE(CounterDelta(after, "translate.count"), 6u);
  EXPECT_GT(CounterDelta(after, "translate.tableau_states"), 0u);

  // 2. prefilter: registrations inserted, queries extracted + looked up.
  EXPECT_EQ(CounterDelta(after, "prefilter.inserts"), 3u);
  EXPECT_GT(CounterDelta(after, "prefilter.lookups"), 0u);
  EXPECT_GT(CounterDelta(after, "prefilter.conditions_extracted"), 0u);

  // 3. permission: every candidate check recorded.
  EXPECT_GT(CounterDelta(after, "permission.checks"), 0u);
  EXPECT_GT(CounterDelta(after, "permission.pairs_visited"), 0u);
  EXPECT_GT(HistCountDelta(after, "permission.pairs_per_check"), 0u);

  // 4. projection: precomputes at registration, cache traffic at query time.
  EXPECT_EQ(CounterDelta(after, "projection.precomputes"), 3u);
  EXPECT_GT(CounterDelta(after, "projection.quotient_cache_hits") +
                CounterDelta(after, "projection.quotient_cache_misses"),
            0u);

  // 6. broker: per-call stats flushed into the registry.
  EXPECT_EQ(CounterDelta(after, "broker.registrations"), 3u);
  EXPECT_EQ(CounterDelta(after, "broker.queries"), 3u);
  EXPECT_GT(HistCountDelta(after, "broker.query.total_us"), 0u);
  EXPECT_GT(HistCountDelta(after, "broker.register.ba_states"), 0u);
}

TEST_F(ObsPipelineTest, ThreadPoolLayerReportsUnderParallelBatch) {
  const std::vector<std::string> queries = {"F q", "F p", "G(p -> F q)",
                                            "F (p & F q)"};
  {
    DatabaseOptions options;
    options.threads = 4;
    ContractDatabase db(options);
    std::vector<ContractDatabase::BatchEntry> entries;
    for (int i = 0; i < 8; ++i) {
      entries.push_back({"c" + std::to_string(i),
                         i % 2 == 0 ? "G(p -> F q)" : "G(q -> F p)"});
    }
    ASSERT_TRUE(db.RegisterBatch(entries).ok());

    QueryOptions query;
    query.threads = 4;
    auto results = db.QueryBatch(queries, query);
    ASSERT_TRUE(results.ok()) << results.status();
  }
  // The database (and its pool) is destroyed before scraping: ParallelFor
  // returns when every iteration is done, but helper tasks that were never
  // scheduled still sit in the deques as queued no-ops. Pool shutdown
  // drains them, making the queue-depth and latency-count checks exact.
  const obs::MetricsSnapshot after =
      obs::MetricsRegistry::Default()->Snapshot();

  // 5. thread pool: parallel phases submitted tasks and timed them.
  EXPECT_GT(CounterDelta(after, "threadpool.tasks_submitted"), 0u);
  EXPECT_GT(HistCountDelta(after, "threadpool.task_latency_us"), 0u);
  // The queue drains fully once the batch returns.
  EXPECT_EQ(after.GaugeValue("threadpool.queue_depth"), 0);

  // Batched queries flush per-query broker stats like serial ones do.
  EXPECT_EQ(CounterDelta(after, "broker.queries"), queries.size());
}

TEST_F(ObsPipelineTest, DisabledRuntimeRecordsNothing) {
  obs::SetEnabled(false);
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "G(p -> F q)").ok());
  ASSERT_TRUE(db.Query("F q").ok());
  obs::SetEnabled(true);

  const obs::MetricsSnapshot after = db.MetricsSnapshot();
  EXPECT_EQ(CounterDelta(after, "broker.queries"), 0u);
  EXPECT_EQ(CounterDelta(after, "translate.count"), 0u);
  EXPECT_EQ(CounterDelta(after, "permission.checks"), 0u);
}

#endif  // CTDB_OBS

}  // namespace
}  // namespace ctdb::broker
