#include "translate/cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "automata/bisimulation.h"
#include "automata/serialize.h"
#include "broker/database.h"
#include "ltl/parser.h"
#include "translate/ltl_to_ba.h"

namespace ctdb::translate {
namespace {

std::shared_ptr<const automata::Buchi> MakeValue() {
  automata::Buchi ba;
  return std::make_shared<const automata::Buchi>(std::move(ba));
}

const ltl::Formula* ParseNnf(const std::string& text, Vocabulary* vocab,
                             ltl::FormulaFactory* factory,
                             const TranslateOptions& options = {}) {
  auto parsed = ltl::Parse(text, factory, vocab);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return NormalizeForTableau(*parsed, factory, options);
}

TEST(TranslateCacheTest, KeyIsCanonicalAcrossFactories) {
  Vocabulary vocab;
  ltl::FormulaFactory f1;
  ltl::FormulaFactory f2;
  const std::string text = "G(purchase -> F refund) & (use U refund)";
  const std::string key1 =
      CanonicalTranslationKey(ParseNnf(text, &vocab, &f1), {});
  const std::string key2 =
      CanonicalTranslationKey(ParseNnf(text, &vocab, &f2), {});
  EXPECT_EQ(key1, key2);
}

TEST(TranslateCacheTest, KeySeparatesFormulasAndOptions) {
  Vocabulary vocab;
  ltl::FormulaFactory factory;
  const std::string a =
      CanonicalTranslationKey(ParseNnf("F purchase", &vocab, &factory), {});
  const std::string b =
      CanonicalTranslationKey(ParseNnf("G purchase", &vocab, &factory), {});
  EXPECT_NE(a, b);

  TranslateOptions no_reduce;
  no_reduce.reduce = false;
  const ltl::Formula* nnf = ParseNnf("F purchase", &vocab, &factory);
  EXPECT_NE(CanonicalTranslationKey(nnf, {}),
            CanonicalTranslationKey(nnf, no_reduce));
}

TEST(TranslateCacheTest, HitMissAndStats) {
  TranslationCache cache(4);
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.Lookup("k1"), nullptr);
  auto value = MakeValue();
  cache.Insert("k1", value);
  EXPECT_EQ(cache.Lookup("k1"), value);
  const TranslationCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.capacity, 4u);
}

TEST(TranslateCacheTest, EvictsLeastRecentlyUsed) {
  TranslationCache cache(2);  // small capacity ⇒ single shard, exact LRU
  cache.Insert("a", MakeValue());
  cache.Insert("b", MakeValue());
  EXPECT_NE(cache.Lookup("a"), nullptr);  // refresh "a": "b" is now LRU
  cache.Insert("c", MakeValue());
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_EQ(cache.Stats().entries, 2u);
}

TEST(TranslateCacheTest, CapacityZeroDisables) {
  TranslationCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert("k", MakeValue());
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  const TranslationCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.capacity, 0u);
}

TEST(TranslateCacheTest, CachedTranslationEqualsFresh) {
  Vocabulary vocab;
  const std::string text =
      "G(purchase -> !use) & (purchase B use) & G(use -> F refund)";
  TranslationCache cache(16);

  // Fill + hit through one factory.
  bool hit = false;
  ltl::FormulaFactory f1;
  auto first = LtlToBuchiCached(*ltl::Parse(text, &f1, &vocab), &f1, &cache,
                                {}, nullptr, &hit);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(hit);

  // Same text through a *different* factory must hit and return the shared
  // automaton.
  ltl::FormulaFactory f2;
  auto second = LtlToBuchiCached(*ltl::Parse(text, &f2, &vocab), &f2, &cache,
                                 {}, nullptr, &hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(first->get(), second->get());

  // The cached automaton is byte-identical to an uncached translation (the
  // pipeline is deterministic)...
  ltl::FormulaFactory f3;
  auto fresh = translate::LtlToBuchi(*ltl::Parse(text, &f3, &vocab), &f3);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(automata::Serialize(**second, vocab),
            automata::Serialize(*fresh, vocab));
  // ...and bisimulation-equivalent to it: the coarsest bisimulation of the
  // disjoint union must put the two initial states in one block.
  automata::Buchi combined = **second;
  const automata::StateId offset = combined.StateCount();
  for (automata::StateId s = 0; s < fresh->StateCount(); ++s) {
    const automata::StateId n = combined.AddState();
    if (fresh->IsFinal(s)) combined.SetFinal(n);
  }
  for (automata::StateId s = 0; s < fresh->StateCount(); ++s) {
    for (const automata::Transition& t : fresh->Out(s)) {
      combined.AddTransition(offset + s, t.label, offset + t.to);
    }
  }
  const automata::Partition partition =
      automata::CoarsestBisimulation(combined);
  EXPECT_EQ(partition.block_of[(*second)->initial()],
            partition.block_of[offset + fresh->initial()]);
}

TEST(TranslateCacheTest, DatabaseQueriesShareTheCache) {
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("c1", "G(a -> F b)").ok());
  ASSERT_TRUE(db.Register("c2", "G(b -> !a)").ok());

  auto first = db.Query("F(a & F b)");
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->stats.translate_cache_hit);
  auto second = db.Query("F(a & F b)");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->stats.translate_cache_hit);
  EXPECT_EQ(second->matches, first->matches);

  const TranslationCacheStats stats = db.TranslationCacheStats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.misses, 1u);
}

TEST(TranslateCacheTest, DatabaseCacheCanBeDisabled) {
  broker::DatabaseOptions options;
  options.translation_cache_capacity = 0;
  broker::ContractDatabase db(options);
  ASSERT_TRUE(db.Register("c1", "G(a -> F b)").ok());
  for (int i = 0; i < 3; ++i) {
    auto r = db.Query("F a");
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->stats.translate_cache_hit);
  }
  const TranslationCacheStats stats = db.TranslationCacheStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

/// Concurrent readers of one database share the translation cache; run under
/// TSan in CI (the sanitize job's filter includes "TranslateCache"). Every
/// thread issues the same query mix, so later threads hit entries earlier
/// threads inserted while insertions are still racing in.
TEST(TranslateCacheConcurrencyTest, ConcurrentReadersShareCache) {
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("c1", "G(a -> F b) & (a B c)").ok());
  ASSERT_TRUE(db.Register("c2", "G(c -> !a) & G(b -> F c)").ok());
  const std::vector<std::string> queries = {"F(a & F b)", "G(a -> F c)",
                                            "F b & F c", "a U b"};

  auto baseline = db.Query(queries[0]);
  ASSERT_TRUE(baseline.ok());

  constexpr int kThreads = 4;
  constexpr int kRoundsPerThread = 8;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        for (const std::string& q : queries) {
          auto r = db.Query(q);
          if (!r.ok()) ++failures[t];
          if (q == queries[0] && r.ok() && r->matches != baseline->matches) {
            ++failures[t];
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;

  const TranslationCacheStats stats = db.TranslationCacheStats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_LE(stats.entries, stats.capacity);
}

}  // namespace
}  // namespace ctdb::translate
