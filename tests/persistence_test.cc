#include "broker/persistence.h"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/generator.h"

namespace ctdb::broker {
namespace {

std::unique_ptr<ContractDatabase> MakeSampleDb() {
  auto db = std::make_unique<ContractDatabase>();
  EXPECT_TRUE(db->Register("Ticket A", "G(dateChange -> !F refund)").ok());
  EXPECT_TRUE(db->Register("Ticket B", "G(missedFlight -> !F dateChange)").ok());
  EXPECT_TRUE(
      db->Register("Ticket C", "G(!refund) & G(missedFlight -> !F dateChange)")
          .ok());
  return db;
}

TEST(PersistenceTest, RoundTripPreservesStructure) {
  auto db = MakeSampleDb();
  std::ostringstream out;
  ASSERT_TRUE(SaveDatabase(*db, &out).ok());

  std::istringstream in(out.str());
  auto loaded = LoadDatabase(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ((*loaded)->size(), db->size());
  for (uint32_t id = 0; id < db->size(); ++id) {
    EXPECT_EQ((*loaded)->contract(id).name, db->contract(id).name);
    EXPECT_EQ((*loaded)->contract(id).ltl_text, db->contract(id).ltl_text);
    EXPECT_EQ((*loaded)->contract(id).events, db->contract(id).events);
    EXPECT_EQ((*loaded)->contract(id).automaton().StateCount(),
              db->contract(id).automaton().StateCount());
  }
  EXPECT_EQ((*loaded)->vocabulary()->names(), db->vocabulary()->names());
}

TEST(PersistenceTest, LoadedDatabaseAnswersQueriesIdentically) {
  auto db = MakeSampleDb();
  std::ostringstream out;
  ASSERT_TRUE(SaveDatabase(*db, &out).ok());
  std::istringstream in(out.str());
  auto loaded = LoadDatabase(in);
  ASSERT_TRUE(loaded.ok());

  for (const char* q : {"F refund", "F(missedFlight & F dateChange)",
                        "F dateChange", "G !refund"}) {
    auto r1 = db->Query(q);
    auto r2 = (*loaded)->Query(q);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok()) << q << ": " << r2.status();
    EXPECT_EQ(r1->matches, r2->matches) << q;
    EXPECT_EQ(r1->stats.candidates, r2->stats.candidates) << q;
  }
}

TEST(PersistenceTest, GeneratedWorkloadRoundTrip) {
  auto db = std::make_unique<ContractDatabase>();
  workload::GeneratorOptions options;
  options.properties = 3;
  workload::SpecGenerator generator(options, 0x5A7E, db->vocabulary(),
                                    db->factory());
  for (int i = 0; i < 12; ++i) {
    auto spec = generator.Next();
    ASSERT_TRUE(spec.ok());
    ASSERT_TRUE(db->RegisterFormula("c" + std::to_string(i), spec->formula,
                                    spec->text)
                    .ok());
  }
  std::ostringstream out;
  ASSERT_TRUE(SaveDatabase(*db, &out).ok());
  std::istringstream in(out.str());
  auto loaded = LoadDatabase(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  workload::GeneratorOptions qopts;
  qopts.properties = 1;
  workload::SpecGenerator queries(qopts, 0xF00, db->vocabulary(),
                                  db->factory());
  for (int i = 0; i < 8; ++i) {
    auto q = queries.Next();
    ASSERT_TRUE(q.ok());
    auto r1 = db->Query(q->text);
    auto r2 = (*loaded)->Query(q->text);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r1->matches, r2->matches) << q->text;
  }
}

TEST(PersistenceTest, SnapshotRoundTripIgnoresLaterRegistrations) {
  auto db = MakeSampleDb();
  // Pin the 3-contract state, then keep writing: the save must reflect the
  // snapshot, not the database's current state.
  const std::shared_ptr<const DatabaseSnapshot> snap = db->Snapshot();
  ASSERT_TRUE(db->Register("Ticket D", "G(!dateChange)").ok());
  ASSERT_TRUE(db->InternEvent("loungeAccess").ok());

  std::ostringstream out;
  ASSERT_TRUE(SaveSnapshot(*snap, &out).ok());
  std::istringstream in(out.str());
  auto loaded = LoadDatabase(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  ASSERT_EQ((*loaded)->size(), snap->size());
  EXPECT_LT((*loaded)->size(), db->size());
  for (uint32_t id = 0; id < snap->size(); ++id) {
    EXPECT_EQ((*loaded)->contract(id).name, snap->contract(id).name);
    EXPECT_EQ((*loaded)->contract(id).ltl_text, snap->contract(id).ltl_text);
    EXPECT_EQ((*loaded)->contract(id).events, snap->contract(id).events);
  }
  EXPECT_EQ((*loaded)->Snapshot()->vocabulary().names(),
            snap->vocabulary().names());
  EXPECT_FALSE((*loaded)->Snapshot()->vocabulary().Contains("loungeAccess"));

  for (const char* q : {"F refund", "F dateChange", "G !refund"}) {
    auto from_snap = snap->Query(q);
    auto from_loaded = (*loaded)->Query(q);
    ASSERT_TRUE(from_snap.ok());
    ASSERT_TRUE(from_loaded.ok()) << q << ": " << from_loaded.status();
    EXPECT_EQ(from_snap->matches, from_loaded->matches) << q;
  }
}

TEST(PersistenceTest, LoadUnderDifferentOptionsStillCorrect) {
  auto db = MakeSampleDb();
  std::ostringstream out;
  ASSERT_TRUE(SaveDatabase(*db, &out).ok());

  DatabaseOptions lean;
  lean.build_prefilter = false;
  lean.build_projections = false;
  std::istringstream in(out.str());
  auto loaded = LoadDatabase(in, lean);
  ASSERT_TRUE(loaded.ok());
  QueryOptions scan;
  scan.use_prefilter = false;
  scan.use_projections = false;
  auto r1 = db->Query("F refund");
  auto r2 = (*loaded)->Query("F refund", scan);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->matches, r2->matches);
}

TEST(PersistenceTest, FileRoundTrip) {
  auto db = MakeSampleDb();
  const std::string path = ::testing::TempDir() + "/ctdb_persist_test.db";
  ASSERT_TRUE(SaveDatabaseToFile(*db, path).ok());
  auto loaded = LoadDatabaseFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->size(), db->size());
  EXPECT_TRUE(LoadDatabaseFromFile(path + ".missing").status().IsNotFound());
}

TEST(PersistenceTest, RejectsCorruptedInput) {
  auto reject = [](const std::string& text) {
    std::istringstream in(text);
    return LoadDatabase(in).status();
  };
  EXPECT_FALSE(reject("").ok());
  EXPECT_FALSE(reject("wrong-header\n").ok());
  EXPECT_FALSE(reject("ctdb-database-v1\nvocabulary x\n").ok());
  EXPECT_FALSE(
      reject("ctdb-database-v1\nvocabulary 0\ncontracts 1\n").ok());
  EXPECT_FALSE(reject("ctdb-database-v1\nvocabulary 0\ncontracts 1\n"
                      "contract 5\n")
                   .ok());
  // Truncated: no end-database.
  auto db = MakeSampleDb();
  std::ostringstream out;
  ASSERT_TRUE(SaveDatabase(*db, &out).ok());
  std::string text = out.str();
  text.resize(text.size() - 14);  // chop the footer
  EXPECT_FALSE(reject(text).ok());
}

}  // namespace
}  // namespace ctdb::broker
