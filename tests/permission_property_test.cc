// Property tests for the permission core:
//  1. Algorithm 2 (with and without seeds) and the SCC checker always agree.
//  2. Permission is witnessed semantically: whenever any checker says yes,
//     the other checkers agree, and whenever the query BA's language is empty
//     no contract permits it.
//  3. Theorem 6 reduction: C(ϕ) permits `true` ⇔ ϕ satisfiable.
//  4. Definition 1(b): a query whose only satisfying runs involve events
//     outside the contract vocabulary is never permitted.

#include <gtest/gtest.h>

#include "automata/ops.h"
#include "core/permission.h"
#include "testing/generators.h"
#include "translate/ltl_to_ba.h"

namespace ctdb::core {
namespace {

using automata::Buchi;

struct Inputs {
  Buchi contract;
  Bitset contract_events;
  Buchi query;
};

class PermissionPropertyTest : public ::testing::Test {
 protected:
  ltl::FormulaFactory fac_;
  Vocabulary vocab_ = ctdb::testing::TestVocabulary(4);

  Inputs Draw(Rng* rng, size_t contract_events, size_t query_events,
              int depth) {
    Inputs in;
    const ltl::Formula* cf =
        ctdb::testing::RandomFormula(rng, &fac_, contract_events, depth);
    const ltl::Formula* qf =
        ctdb::testing::RandomFormula(rng, &fac_, query_events, depth);
    auto cba = translate::LtlToBuchi(cf, &fac_);
    auto qba = translate::LtlToBuchi(qf, &fac_);
    EXPECT_TRUE(cba.ok());
    EXPECT_TRUE(qba.ok());
    in.contract = std::move(*cba);
    in.query = std::move(*qba);
    cf->CollectEvents(&in.contract_events);
    in.contract_events.Resize(4);
    return in;
  }
};

TEST_F(PermissionPropertyTest, AllCheckersAgreeOnRandomInputs) {
  Rng rng(777001);
  for (int trial = 0; trial < 400; ++trial) {
    Inputs in = Draw(&rng, 3, 3, 3);
    PermissionOptions nested_no_seeds{PermissionAlgorithm::kNestedDfs, false};
    PermissionOptions nested_seeds{PermissionAlgorithm::kNestedDfs, true};
    PermissionOptions scc{PermissionAlgorithm::kScc, true};
    const bool a = Permits(in.contract, in.contract_events, in.query,
                           nested_no_seeds);
    const bool b =
        Permits(in.contract, in.contract_events, in.query, nested_seeds);
    const bool c = Permits(in.contract, in.contract_events, in.query, scc);
    ASSERT_EQ(a, b) << "seeds changed the verdict (trial " << trial << ")";
    ASSERT_EQ(a, c) << "SCC checker disagrees (trial " << trial << ")";
  }
}

TEST_F(PermissionPropertyTest, EmptyQueryLanguageNeverPermitted) {
  Rng rng(777002);
  int empties = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Inputs in = Draw(&rng, 3, 3, 3);
    if (!automata::IsEmptyLanguage(in.query)) continue;
    ++empties;
    EXPECT_FALSE(Permits(in.contract, in.contract_events, in.query));
  }
  EXPECT_GT(empties, 5);  // the draw produces some unsatisfiable queries
}

TEST_F(PermissionPropertyTest, EmptyContractPermitsNothing) {
  Rng rng(777003);
  for (int trial = 0; trial < 200; ++trial) {
    Inputs in = Draw(&rng, 3, 3, 3);
    if (!automata::IsEmptyLanguage(in.contract)) continue;
    EXPECT_FALSE(Permits(in.contract, in.contract_events, in.query));
  }
}

TEST_F(PermissionPropertyTest, Theorem6TrueQueryIsSatisfiability) {
  Rng rng(777004);
  auto true_ba = translate::LtlToBuchi(fac_.True(), &fac_);
  ASSERT_TRUE(true_ba.ok());
  for (int trial = 0; trial < 200; ++trial) {
    Inputs in = Draw(&rng, 3, 1, 3);
    const bool sat = !automata::IsEmptyLanguage(in.contract);
    EXPECT_EQ(Permits(in.contract, in.contract_events, *true_ba), sat);
  }
}

TEST_F(PermissionPropertyTest, QueriesOverForeignEventsNeverPermitted) {
  Rng rng(777005);
  // Contracts over event 0 only; queries whose every lasso needs event 3.
  ltl::FormulaFactory& fac = fac_;
  const ltl::Formula* needs_foreign = fac.Finally(fac.Prop(3));
  auto qba = translate::LtlToBuchi(needs_foreign, &fac);
  ASSERT_TRUE(qba.ok());
  for (int trial = 0; trial < 100; ++trial) {
    const ltl::Formula* cf = ctdb::testing::RandomFormula(&rng, &fac, 1, 3);
    auto cba = translate::LtlToBuchi(cf, &fac);
    ASSERT_TRUE(cba.ok());
    Bitset events;
    cf->CollectEvents(&events);
    events.Resize(4);
    EXPECT_FALSE(Permits(*cba, events, *qba))
        << cf->ToString(vocab_);
  }
}

/// Monotonicity sanity: a query that the contract itself entails (the
/// contract formula as query) is permitted whenever the contract is
/// satisfiable.
TEST_F(PermissionPropertyTest, ContractPermitsItself) {
  Rng rng(777006);
  for (int trial = 0; trial < 150; ++trial) {
    const ltl::Formula* cf = ctdb::testing::RandomFormula(&rng, &fac_, 3, 3);
    auto cba = translate::LtlToBuchi(cf, &fac_);
    ASSERT_TRUE(cba.ok());
    if (automata::IsEmptyLanguage(*cba)) continue;
    Bitset events;
    cf->CollectEvents(&events);
    EXPECT_TRUE(Permits(*cba, events, *cba)) << cf->ToString(vocab_);
  }
}

}  // namespace
}  // namespace ctdb::core
