// The reference permission checker (explicit compatibility product +
// emptiness) must agree with both production algorithms on every input, and
// must detect a deliberately corrupted verdict — otherwise it could not act
// as an oracle for the differential fuzzer.

#include "testing/reference.h"

#include <gtest/gtest.h>

#include "automata/ops.h"
#include "core/permission.h"
#include "ltl/parser.h"
#include "testing/generators.h"
#include "translate/ltl_to_ba.h"
#include "util/rng.h"

namespace ctdb::testing {
namespace {

automata::Buchi Translate(const std::string& text, ltl::FormulaFactory* fac,
                          Vocabulary* vocab) {
  auto f = ltl::Parse(text, fac, vocab);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  auto ba = translate::LtlToBuchi(*f, fac);
  EXPECT_TRUE(ba.ok()) << ba.status().ToString();
  return std::move(*ba);
}

Bitset AllEvents(size_t n) {
  Bitset events(n);
  events.SetAll();
  return events;
}

TEST(ReferenceCheckerTest, PermitsIdenticalGloballyFormulas) {
  ltl::FormulaFactory fac;
  Vocabulary vocab = TestVocabulary(2);
  const automata::Buchi contract = Translate("G e0", &fac, &vocab);
  const automata::Buchi query = Translate("G e0", &fac, &vocab);
  EXPECT_TRUE(ReferencePermits(contract, AllEvents(2), query));
}

TEST(ReferenceCheckerTest, RejectsContradictoryQuery) {
  ltl::FormulaFactory fac;
  Vocabulary vocab = TestVocabulary(2);
  const automata::Buchi contract = Translate("G e0", &fac, &vocab);
  // Every run of the query denies e0 from the start; no label of the
  // contract's runs is consistent with it.
  const automata::Buchi query = Translate("G !e0", &fac, &vocab);
  EXPECT_FALSE(ReferencePermits(contract, AllEvents(2), query));
}

TEST(ReferenceCheckerTest, ResponseContractPermitsEventualGrant) {
  ltl::FormulaFactory fac;
  Vocabulary vocab = TestVocabulary(2);
  const automata::Buchi contract = Translate("G (e0 -> F e1)", &fac, &vocab);
  const automata::Buchi query = Translate("F e1", &fac, &vocab);
  EXPECT_TRUE(ReferencePermits(contract, AllEvents(2), query));
}

TEST(ReferenceCheckerTest, ProductHasNoAcceptingCycleWithoutBothFinalSets) {
  ltl::FormulaFactory fac;
  Vocabulary vocab = TestVocabulary(1);
  // "F e0" paired with "G !e0": the query can never leave its pre-e0 phase
  // consistently, so the product language is empty.
  const automata::Buchi contract = Translate("F e0", &fac, &vocab);
  const automata::Buchi query = Translate("G !e0", &fac, &vocab);
  const automata::Buchi product =
      PermissionProduct(contract, AllEvents(1), query);
  EXPECT_TRUE(automata::IsEmptyLanguage(product));
}

// The core oracle property: on random formula pairs the reference product
// agrees with nested-DFS (with and without seeds) and with the SCC variant.
TEST(ReferenceCheckerTest, AgreesWithProductionAlgorithmsOnRandomFormulas) {
  Rng rng(2011);
  size_t permitted = 0;
  for (int i = 0; i < 200; ++i) {
    ltl::FormulaFactory fac;
    const size_t num_events = 3 + rng.Uniform(2);
    const ltl::Formula* cf = RandomFormula(&rng, &fac, num_events, 3);
    const ltl::Formula* qf = RandomFormula(&rng, &fac, num_events, 3);
    auto cba = translate::LtlToBuchi(cf, &fac);
    auto qba = translate::LtlToBuchi(qf, &fac);
    ASSERT_TRUE(cba.ok() && qba.ok());
    const Bitset events = AllEvents(num_events);

    const bool reference = ReferencePermits(*cba, events, *qba);
    if (reference) ++permitted;

    core::PermissionOptions ndfs;
    ndfs.algorithm = core::PermissionAlgorithm::kNestedDfs;
    EXPECT_EQ(reference, core::Permits(*cba, events, *qba, ndfs))
        << "nested-DFS disagrees at draw " << i;

    ndfs.use_seeds = false;
    EXPECT_EQ(reference, core::Permits(*cba, events, *qba, ndfs))
        << "nested-DFS (no seeds) disagrees at draw " << i;

    core::PermissionOptions scc;
    scc.algorithm = core::PermissionAlgorithm::kScc;
    EXPECT_EQ(reference, core::Permits(*cba, events, *qba, scc))
        << "SCC disagrees at draw " << i;
  }
  // The draws must exercise both verdicts or the test proves nothing.
  EXPECT_GT(permitted, 0u);
  EXPECT_LT(permitted, 200u);
}

// Injected bug: flipping the reference verdict must break the agreement —
// i.e. the production side is genuinely independent evidence.
TEST(ReferenceCheckerTest, DetectsFlippedVerdict) {
  ltl::FormulaFactory fac;
  Vocabulary vocab = TestVocabulary(2);
  const automata::Buchi contract = Translate("G e0", &fac, &vocab);
  const automata::Buchi query = Translate("G e0", &fac, &vocab);
  const Bitset events = AllEvents(2);
  const bool flipped = !ReferencePermits(contract, events, query);
  EXPECT_NE(flipped, core::Permits(contract, events, query));
}

}  // namespace
}  // namespace ctdb::testing
