// Hostile-input hardening for the persistence layer: a corrupted or
// truncated database stream must come back as a Status (or load to a
// still-usable database when the flip lands in slack like whitespace) —
// never crash, hang, or exhaust memory. Exhaustively bit-flips and truncates
// a real multi-contract save image.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "automata/serialize.h"
#include "broker/durable.h"
#include "broker/persistence.h"
#include "shard/manifest.h"
#include "shard/sharded.h"
#include "testing/temp_dir.h"
#include "testing/universe.h"
#include "util/file_util.h"
#include "wal/segment.h"
#include "wal/wal.h"

namespace ctdb::testing {
namespace {

std::string SavedImage() {
  RandomDatabaseSpec spec;
  spec.contracts = 3;
  spec.contract_patterns = 2;
  auto db = RandomDatabase(spec, /*seed=*/11);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  std::ostringstream out;
  const Status save = broker::SaveDatabase(**db, &out);
  EXPECT_TRUE(save.ok()) << save.ToString();
  return out.str();
}

TEST(PersistenceCorruptionTest, CleanImageRoundTrips) {
  const std::string image = SavedImage();
  std::istringstream in(image);
  auto db = broker::LoadDatabase(in);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->size(), 3u);
}

// Flip one bit of every byte in turn; each load must terminate with either a
// Status error or a database that still answers a query.
TEST(PersistenceCorruptionTest, SingleBitFlipsNeverCrash) {
  const std::string image = SavedImage();
  ASSERT_FALSE(image.empty());
  size_t rejected = 0;
  for (size_t i = 0; i < image.size(); ++i) {
    std::string corrupted = image;
    corrupted[i] = static_cast<char>(corrupted[i] ^ (1u << (i % 8)));
    std::istringstream in(corrupted);
    auto db = broker::LoadDatabase(in);
    if (!db.ok()) {
      ++rejected;
      continue;
    }
    auto r = (*db)->Query("F p1");
    if (!r.ok()) continue;  // vocabulary may have been renamed by the flip
  }
  // Most flips land in load-bearing bytes; the loader must be actually
  // validating, not accepting garbage.
  EXPECT_GT(rejected, image.size() / 4);
}

TEST(PersistenceCorruptionTest, TruncationsNeverCrash) {
  const std::string image = SavedImage();
  for (size_t len = 0; len < image.size(); len += 7) {
    const std::string prefix = image.substr(0, len);
    std::istringstream in(prefix);
    auto db = broker::LoadDatabase(in);
    // A prefix that cut the end-database footer must be rejected. (A cut
    // that only drops the final newline still carries the footer — fine.)
    if (db.ok()) {
      EXPECT_NE(prefix.find("end-database"), std::string::npos)
          << "accepted a prefix of " << len << " bytes without a footer";
    }
  }
}

TEST(PersistenceCorruptionTest, SerializedAutomatonBitFlipsNeverCrash) {
  Vocabulary vocab;
  const std::string text =
      "ba states=3 initial=0\n"
      "finals 0 2\n"
      "t 0 1 pay & !cancel\n"
      "t 1 2 deliver\n"
      "t 2 2 true\n"
      "end\n";
  {
    auto clean = automata::Deserialize(text, &vocab);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  }
  for (size_t i = 0; i < text.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = text;
      corrupted[i] = static_cast<char>(corrupted[i] ^ (1u << bit));
      Vocabulary scratch;
      auto ba = automata::Deserialize(corrupted, &scratch);
      if (ba.ok()) {
        EXPECT_TRUE(ba->Validate().ok());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// WAL segment corruption: same contract as above, for the durability layer.
// Every injected corruption must end in either a successful recovery whose
// contract set is a PREFIX of what was written (tail truncation) or a clean
// Status::Corruption — never a crash, never silently altered contracts.

constexpr int kWalContracts = 5;

std::string WalContractName(int i) { return "wal-c" + std::to_string(i); }
std::string WalContractLtl(int i) {
  return i % 2 == 0 ? "F pay" : "G(request -> F grant)";
}

/// Bytes of a single-segment WAL holding kWalContracts registrations.
const std::string& WalSegmentImage() {
  static const std::string image = [] {
    TempDir dir("walimage");
    wal::DurabilityOptions options;
    options.fsync_policy = wal::FsyncPolicy::kNever;
    auto db = broker::DurableDatabase::Open(dir.path(), options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < kWalContracts; ++i) {
      auto id = (*db)->Register(WalContractName(i), WalContractLtl(i));
      EXPECT_TRUE(id.ok()) << id.status().ToString();
    }
    EXPECT_TRUE((*db)->Close().ok());
    auto data = util::ReadFileToString(dir.file(wal::SegmentFileName(1)));
    EXPECT_TRUE(data.ok()) << data.status().ToString();
    return data.ok() ? *data : std::string();
  }();
  return image;
}

/// Writes `image` as the only segment of a fresh WAL dir, recovers it, and
/// enforces the prefix-or-Corruption contract.
void CheckWalImage(const std::string& image, const std::string& what) {
  TempDir dir("walcorrupt");
  ASSERT_TRUE(
      util::WriteFileAtomic(dir.file(wal::SegmentFileName(1)), image).ok());
  broker::RecoveryStats stats;
  auto db = broker::RecoverDatabase(dir.path(), {}, &stats);
  if (!db.ok()) {
    EXPECT_TRUE(db.status().IsCorruption())
        << what << ": unexpected error class " << db.status().ToString();
    return;
  }
  ASSERT_LE((*db)->size(), static_cast<size_t>(kWalContracts)) << what;
  for (size_t i = 0; i < (*db)->size(); ++i) {
    ASSERT_EQ((*db)->contract(static_cast<uint32_t>(i)).name,
              WalContractName(static_cast<int>(i)))
        << what << ": recovered a non-prefix contract set";
    ASSERT_EQ((*db)->contract(static_cast<uint32_t>(i)).ltl_text,
              WalContractLtl(static_cast<int>(i)))
        << what << ": recovered altered contract text";
  }
}

TEST(PersistenceCorruptionTest, WalSegmentCleanImageRecoversEverything) {
  const std::string& image = WalSegmentImage();
  ASSERT_FALSE(image.empty());
  TempDir dir("walclean");
  ASSERT_TRUE(
      util::WriteFileAtomic(dir.file(wal::SegmentFileName(1)), image).ok());
  auto db = broker::RecoverDatabase(dir.path());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->size(), static_cast<size_t>(kWalContracts));
}

TEST(PersistenceCorruptionTest, WalSegmentBitFlipsRecoverPrefixOrReject) {
  const std::string& image = WalSegmentImage();
  ASSERT_FALSE(image.empty());
  for (size_t i = 0; i < image.size(); ++i) {
    std::string corrupted = image;
    corrupted[i] = static_cast<char>(corrupted[i] ^ (1u << (i % 8)));
    CheckWalImage(corrupted, "bit flip in byte " + std::to_string(i));
  }
}

TEST(PersistenceCorruptionTest, WalSegmentTruncationsRecoverPrefix) {
  const std::string& image = WalSegmentImage();
  ASSERT_FALSE(image.empty());
  for (size_t len = 0; len <= image.size(); len += 3) {
    CheckWalImage(image.substr(0, len),
                  "truncation to " + std::to_string(len) + " bytes");
  }
}

TEST(PersistenceCorruptionTest, WalSegmentGarbageTailRecoversEverything) {
  const std::string& image = WalSegmentImage();
  ASSERT_FALSE(image.empty());
  std::string garbage = "trailing garbage after a crash";
  garbage += '\0';
  garbage += "\x13\x37";
  CheckWalImage(image + garbage, "garbage tail");
}

// ---------------------------------------------------------------------------
// Sharded directory corruption: damage to ONE shard's log must stay that
// shard's problem. Recovery of the whole topology either succeeds with the
// healthy shard complete and the damaged shard a prefix of its intended
// contracts, or fails with a Corruption naming the damaged shard — it must
// never poison a healthy shard's contract set or blame the wrong directory.

constexpr size_t kShardedShards = 2;
constexpr int kShardedContracts = 6;

/// Per-shard intended contracts under striped routing: global id i lands on
/// shard i % 2 as local i / 2.
std::vector<int> IntendedGlobals(size_t shard) {
  std::vector<int> globals;
  for (int i = 0; i < kShardedContracts; ++i) {
    if (static_cast<size_t>(i) % kShardedShards == shard) globals.push_back(i);
  }
  return globals;
}

/// Segment bytes of each shard of a freshly written 2-shard database,
/// captured once (registration is the expensive part; trials only rewrite
/// files).
const std::vector<std::string>& ShardSegmentImages() {
  static const std::vector<std::string> images = [] {
    TempDir dir("shardimage");
    wal::DurabilityOptions options;
    options.fsync_policy = wal::FsyncPolicy::kNever;
    broker::DatabaseOptions db_options;
    db_options.shards = kShardedShards;
    auto db = shard::ShardedDatabase::Open(dir.path(), options, db_options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < kShardedContracts; ++i) {
      auto id = (*db)->Register(WalContractName(i), WalContractLtl(i));
      EXPECT_TRUE(id.ok()) << id.status().ToString();
      EXPECT_EQ(*id, static_cast<uint32_t>(i));
    }
    EXPECT_TRUE((*db)->Close().ok());
    std::vector<std::string> captured;
    for (size_t k = 0; k < kShardedShards; ++k) {
      auto data = util::ReadFileToString(
          dir.path() + "/" + shard::ShardDirName(k) + "/" +
          wal::SegmentFileName(1));
      EXPECT_TRUE(data.ok()) << data.status().ToString();
      captured.push_back(data.ok() ? *data : std::string());
    }
    return captured;
  }();
  return images;
}

/// Materializes a 2-shard directory with shard 1's segment replaced by
/// `damaged` and enforces the isolation contract described above.
void CheckShardedImage(const std::string& damaged, const std::string& what) {
  const std::vector<std::string>& images = ShardSegmentImages();
  TempDir dir("shardcorrupt");
  shard::Manifest manifest;
  manifest.shards = kShardedShards;
  for (size_t k = 0; k < kShardedShards; ++k) {
    manifest.dirs.push_back(shard::ShardDirName(k));
    ASSERT_TRUE(
        util::CreateDirIfMissing(dir.file(shard::ShardDirName(k))).ok());
  }
  ASSERT_TRUE(shard::WriteManifest(dir.path(), manifest).ok());
  ASSERT_TRUE(util::WriteFileAtomic(dir.file(shard::ShardDirName(0)) + "/" +
                                        wal::SegmentFileName(1),
                                    images[0])
                  .ok());
  ASSERT_TRUE(util::WriteFileAtomic(dir.file(shard::ShardDirName(1)) + "/" +
                                        wal::SegmentFileName(1),
                                    damaged)
                  .ok());

  broker::DatabaseOptions adopt;
  adopt.shards = 0;
  auto db = shard::ShardedDatabase::Open(dir.path(), {}, adopt);
  if (!db.ok()) {
    EXPECT_TRUE(db.status().IsCorruption())
        << what << ": unexpected error class " << db.status().ToString();
    EXPECT_NE(db.status().message().find("shard-001"), std::string::npos)
        << what << ": corruption must name the damaged shard, got "
        << db.status().ToString();
    return;
  }

  // Healthy shard: completely unaffected by the neighbor's damage.
  const broker::DurableDatabase& healthy = (*db)->shard(0);
  const std::vector<int> intended0 = IntendedGlobals(0);
  ASSERT_EQ(healthy.size(), intended0.size()) << what;
  for (size_t local = 0; local < healthy.size(); ++local) {
    EXPECT_EQ(healthy.contract(static_cast<uint32_t>(local)).name,
              WalContractName(intended0[local]))
        << what;
  }
  // Damaged shard: a prefix of its intended contracts, nothing else.
  const broker::DurableDatabase& hurt = (*db)->shard(1);
  const std::vector<int> intended1 = IntendedGlobals(1);
  ASSERT_LE(hurt.size(), intended1.size()) << what;
  for (size_t local = 0; local < hurt.size(); ++local) {
    EXPECT_EQ(hurt.contract(static_cast<uint32_t>(local)).name,
              WalContractName(intended1[local]))
        << what << ": damaged shard recovered a non-prefix contract set";
    EXPECT_EQ(hurt.contract(static_cast<uint32_t>(local)).ltl_text,
              WalContractLtl(intended1[local]))
        << what << ": damaged shard recovered altered contract text";
  }
}

TEST(PersistenceCorruptionTest, ShardedCleanImagesRecoverEverything) {
  const std::vector<std::string>& images = ShardSegmentImages();
  ASSERT_EQ(images.size(), kShardedShards);
  ASSERT_FALSE(images[1].empty());
  CheckShardedImage(images[1], "clean image");
}

TEST(PersistenceCorruptionTest, ShardedBitFlipsStayInTheirShard) {
  const std::vector<std::string>& images = ShardSegmentImages();
  ASSERT_FALSE(images[1].empty());
  // Stride 3 keeps the sweep dense enough to hit every record while each
  // trial pays for a full two-shard recovery.
  for (size_t i = 0; i < images[1].size(); i += 3) {
    std::string corrupted = images[1];
    corrupted[i] = static_cast<char>(corrupted[i] ^ (1u << (i % 8)));
    CheckShardedImage(corrupted, "bit flip in shard-001 byte " +
                                     std::to_string(i));
  }
}

TEST(PersistenceCorruptionTest, ShardedTruncationsRecoverShardPrefix) {
  const std::vector<std::string>& images = ShardSegmentImages();
  ASSERT_FALSE(images[1].empty());
  for (size_t len = 0; len <= images[1].size(); len += 5) {
    CheckShardedImage(images[1].substr(0, len),
                      "truncation of shard-001 to " + std::to_string(len) +
                          " bytes");
  }
}

TEST(PersistenceCorruptionTest, HugeDeclaredStateCountIsRejected) {
  Vocabulary vocab;
  auto ba = automata::Deserialize(
      "ba states=99999999999 initial=0\nfinals 0\nend\n", &vocab);
  ASSERT_FALSE(ba.ok());
  EXPECT_EQ(ba.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace ctdb::testing
