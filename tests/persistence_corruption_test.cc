// Hostile-input hardening for the persistence layer: a corrupted or
// truncated database stream must come back as a Status (or load to a
// still-usable database when the flip lands in slack like whitespace) —
// never crash, hang, or exhaust memory. Exhaustively bit-flips and truncates
// a real multi-contract save image.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "automata/serialize.h"
#include "broker/durable.h"
#include "broker/persistence.h"
#include "testing/temp_dir.h"
#include "testing/universe.h"
#include "util/file_util.h"
#include "wal/segment.h"
#include "wal/wal.h"

namespace ctdb::testing {
namespace {

std::string SavedImage() {
  RandomDatabaseSpec spec;
  spec.contracts = 3;
  spec.contract_patterns = 2;
  auto db = RandomDatabase(spec, /*seed=*/11);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  std::ostringstream out;
  const Status save = broker::SaveDatabase(**db, &out);
  EXPECT_TRUE(save.ok()) << save.ToString();
  return out.str();
}

TEST(PersistenceCorruptionTest, CleanImageRoundTrips) {
  const std::string image = SavedImage();
  std::istringstream in(image);
  auto db = broker::LoadDatabase(in);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->size(), 3u);
}

// Flip one bit of every byte in turn; each load must terminate with either a
// Status error or a database that still answers a query.
TEST(PersistenceCorruptionTest, SingleBitFlipsNeverCrash) {
  const std::string image = SavedImage();
  ASSERT_FALSE(image.empty());
  size_t rejected = 0;
  for (size_t i = 0; i < image.size(); ++i) {
    std::string corrupted = image;
    corrupted[i] = static_cast<char>(corrupted[i] ^ (1u << (i % 8)));
    std::istringstream in(corrupted);
    auto db = broker::LoadDatabase(in);
    if (!db.ok()) {
      ++rejected;
      continue;
    }
    auto r = (*db)->Query("F p1");
    if (!r.ok()) continue;  // vocabulary may have been renamed by the flip
  }
  // Most flips land in load-bearing bytes; the loader must be actually
  // validating, not accepting garbage.
  EXPECT_GT(rejected, image.size() / 4);
}

TEST(PersistenceCorruptionTest, TruncationsNeverCrash) {
  const std::string image = SavedImage();
  for (size_t len = 0; len < image.size(); len += 7) {
    const std::string prefix = image.substr(0, len);
    std::istringstream in(prefix);
    auto db = broker::LoadDatabase(in);
    // A prefix that cut the end-database footer must be rejected. (A cut
    // that only drops the final newline still carries the footer — fine.)
    if (db.ok()) {
      EXPECT_NE(prefix.find("end-database"), std::string::npos)
          << "accepted a prefix of " << len << " bytes without a footer";
    }
  }
}

TEST(PersistenceCorruptionTest, SerializedAutomatonBitFlipsNeverCrash) {
  Vocabulary vocab;
  const std::string text =
      "ba states=3 initial=0\n"
      "finals 0 2\n"
      "t 0 1 pay & !cancel\n"
      "t 1 2 deliver\n"
      "t 2 2 true\n"
      "end\n";
  {
    auto clean = automata::Deserialize(text, &vocab);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  }
  for (size_t i = 0; i < text.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = text;
      corrupted[i] = static_cast<char>(corrupted[i] ^ (1u << bit));
      Vocabulary scratch;
      auto ba = automata::Deserialize(corrupted, &scratch);
      if (ba.ok()) {
        EXPECT_TRUE(ba->Validate().ok());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// WAL segment corruption: same contract as above, for the durability layer.
// Every injected corruption must end in either a successful recovery whose
// contract set is a PREFIX of what was written (tail truncation) or a clean
// Status::Corruption — never a crash, never silently altered contracts.

constexpr int kWalContracts = 5;

std::string WalContractName(int i) { return "wal-c" + std::to_string(i); }
std::string WalContractLtl(int i) {
  return i % 2 == 0 ? "F pay" : "G(request -> F grant)";
}

/// Bytes of a single-segment WAL holding kWalContracts registrations.
const std::string& WalSegmentImage() {
  static const std::string image = [] {
    TempDir dir("walimage");
    wal::DurabilityOptions options;
    options.fsync_policy = wal::FsyncPolicy::kNever;
    auto db = broker::DurableDatabase::Open(dir.path(), options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < kWalContracts; ++i) {
      auto id = (*db)->Register(WalContractName(i), WalContractLtl(i));
      EXPECT_TRUE(id.ok()) << id.status().ToString();
    }
    EXPECT_TRUE((*db)->Close().ok());
    auto data = util::ReadFileToString(dir.file(wal::SegmentFileName(1)));
    EXPECT_TRUE(data.ok()) << data.status().ToString();
    return data.ok() ? *data : std::string();
  }();
  return image;
}

/// Writes `image` as the only segment of a fresh WAL dir, recovers it, and
/// enforces the prefix-or-Corruption contract.
void CheckWalImage(const std::string& image, const std::string& what) {
  TempDir dir("walcorrupt");
  ASSERT_TRUE(
      util::WriteFileAtomic(dir.file(wal::SegmentFileName(1)), image).ok());
  broker::RecoveryStats stats;
  auto db = broker::RecoverDatabase(dir.path(), {}, &stats);
  if (!db.ok()) {
    EXPECT_TRUE(db.status().IsCorruption())
        << what << ": unexpected error class " << db.status().ToString();
    return;
  }
  ASSERT_LE((*db)->size(), static_cast<size_t>(kWalContracts)) << what;
  for (size_t i = 0; i < (*db)->size(); ++i) {
    ASSERT_EQ((*db)->contract(static_cast<uint32_t>(i)).name,
              WalContractName(static_cast<int>(i)))
        << what << ": recovered a non-prefix contract set";
    ASSERT_EQ((*db)->contract(static_cast<uint32_t>(i)).ltl_text,
              WalContractLtl(static_cast<int>(i)))
        << what << ": recovered altered contract text";
  }
}

TEST(PersistenceCorruptionTest, WalSegmentCleanImageRecoversEverything) {
  const std::string& image = WalSegmentImage();
  ASSERT_FALSE(image.empty());
  TempDir dir("walclean");
  ASSERT_TRUE(
      util::WriteFileAtomic(dir.file(wal::SegmentFileName(1)), image).ok());
  auto db = broker::RecoverDatabase(dir.path());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->size(), static_cast<size_t>(kWalContracts));
}

TEST(PersistenceCorruptionTest, WalSegmentBitFlipsRecoverPrefixOrReject) {
  const std::string& image = WalSegmentImage();
  ASSERT_FALSE(image.empty());
  for (size_t i = 0; i < image.size(); ++i) {
    std::string corrupted = image;
    corrupted[i] = static_cast<char>(corrupted[i] ^ (1u << (i % 8)));
    CheckWalImage(corrupted, "bit flip in byte " + std::to_string(i));
  }
}

TEST(PersistenceCorruptionTest, WalSegmentTruncationsRecoverPrefix) {
  const std::string& image = WalSegmentImage();
  ASSERT_FALSE(image.empty());
  for (size_t len = 0; len <= image.size(); len += 3) {
    CheckWalImage(image.substr(0, len),
                  "truncation to " + std::to_string(len) + " bytes");
  }
}

TEST(PersistenceCorruptionTest, WalSegmentGarbageTailRecoversEverything) {
  const std::string& image = WalSegmentImage();
  ASSERT_FALSE(image.empty());
  std::string garbage = "trailing garbage after a crash";
  garbage += '\0';
  garbage += "\x13\x37";
  CheckWalImage(image + garbage, "garbage tail");
}

TEST(PersistenceCorruptionTest, HugeDeclaredStateCountIsRejected) {
  Vocabulary vocab;
  auto ba = automata::Deserialize(
      "ba states=99999999999 initial=0\nfinals 0\nend\n", &vocab);
  ASSERT_FALSE(ba.ok());
  EXPECT_EQ(ba.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace ctdb::testing
