#include "projection/store.h"

#include <gtest/gtest.h>

#include "automata/serialize.h"
#include "core/permission.h"
#include "ltl/parser.h"
#include "testing/generators.h"
#include "translate/ltl_to_ba.h"
#include "util/thread_pool.h"

namespace ctdb::projection {
namespace {

using automata::Buchi;

class StoreTest : public ::testing::Test {
 protected:
  Buchi BA(const std::string& text) {
    auto f = ltl::Parse(text, &fac_, &vocab_);
    EXPECT_TRUE(f.ok()) << f.status();
    auto ba = translate::LtlToBuchi(*f, &fac_);
    EXPECT_TRUE(ba.ok()) << ba.status();
    return std::move(*ba);
  }
  Vocabulary vocab_ = ctdb::testing::TestVocabulary(4);
  ltl::FormulaFactory fac_;
};

TEST_F(StoreTest, WrapOnlyReturnsOriginal) {
  Buchi ba = BA("G(e0 -> F e1)");
  const size_t states = ba.StateCount();
  ContractProjections store = ContractProjections::WrapOnly(std::move(ba));
  Bitset any(4);
  any.Set(0);
  EXPECT_EQ(&store.ForQueryEvents(any), &store.original());
  EXPECT_EQ(store.original().StateCount(), states);
  EXPECT_EQ(store.stats().subsets_computed, 0u);
}

TEST_F(StoreTest, PrecomputeEnumeratesAllSubsets) {
  ContractProjections store =
      ContractProjections::Precompute(BA("G(e0 -> F e1)"));
  const ProjectionStats stats = store.stats();
  EXPECT_EQ(stats.cited_events, 2u);
  EXPECT_EQ(stats.subsets_computed, 4u);  // {}, {0}, {1}, {0,1}
  EXPECT_GE(stats.distinct_partitions, 1u);
  EXPECT_LE(stats.distinct_partitions, stats.subsets_computed);
  EXPECT_GT(stats.partition_memory_bytes, 0u);
}

TEST_F(StoreTest, EmptyQuerySetGivesSmallestQuotient) {
  ContractProjections store =
      ContractProjections::Precompute(BA("G(e0 -> F e1) & G(e2 -> F e3)"));
  Bitset none(4);
  const Buchi& q = store.ForQueryEvents(none);
  // Projecting away all literals leaves a (usually 1-2 state) skeleton.
  EXPECT_LE(q.StateCount(), store.original().StateCount());
}

TEST_F(StoreTest, QuotientIsCached) {
  ContractProjections store =
      ContractProjections::Precompute(BA("G(e0 -> F e1)"));
  Bitset events(4);
  events.Set(0);
  const Buchi& first = store.ForQueryEvents(events);
  const Buchi& second = store.ForQueryEvents(events);
  EXPECT_EQ(&first, &second);
}

TEST_F(StoreTest, CapFallsBackToFullSet) {
  ProjectionStoreOptions options;
  options.max_enumerated_events = 1;  // force the capped path
  options.max_subset_size = 1;
  ContractProjections store = ContractProjections::Precompute(
      BA("G(e0 -> F e1) & G(e2 -> F e3)"), options);
  // A 2-event query has no exact entry: falls back to the full-set quotient,
  // which must still be permission-equivalent (checked by the property test
  // below); here we check it exists and is no larger than the original.
  Bitset two(4);
  two.Set(0);
  two.Set(2);
  const Buchi& q = store.ForQueryEvents(two);
  EXPECT_LE(q.StateCount(), store.original().StateCount());
}

TEST_F(StoreTest, ContractCitingNothing) {
  ContractProjections store = ContractProjections::Precompute(BA("true"));
  EXPECT_EQ(store.stats().cited_events, 0u);
  Bitset any(4);
  any.Set(1);
  const Buchi& q = store.ForQueryEvents(any);
  EXPECT_GE(q.StateCount(), 1u);
}

/// The store's end-to-end guarantee: for random contracts and queries, and
/// for every store configuration, permission through ForQueryEvents equals
/// permission on the original automaton.
class StorePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(StorePropertyTest, PermissionInvariantUnderStoreQuotients) {
  const size_t kEvents = 3;
  ltl::FormulaFactory fac;
  const Vocabulary vocab = ctdb::testing::TestVocabulary(kEvents);
  Rng rng(606060 + GetParam());
  ProjectionStoreOptions options;
  options.max_enumerated_events = GetParam();  // 0 forces capped everywhere
  options.max_subset_size = GetParam() == 0 ? 1 : 2;

  for (int trial = 0; trial < 120; ++trial) {
    const ltl::Formula* cf =
        ctdb::testing::RandomFormula(&rng, &fac, kEvents, 3);
    const ltl::Formula* qf =
        ctdb::testing::RandomFormula(&rng, &fac, kEvents, 2);
    auto cba = translate::LtlToBuchi(cf, &fac);
    auto qba = translate::LtlToBuchi(qf, &fac);
    ASSERT_TRUE(cba.ok());
    ASSERT_TRUE(qba.ok());
    Bitset contract_events;
    cf->CollectEvents(&contract_events);
    contract_events.Resize(kEvents);

    const bool original = core::Permits(*cba, contract_events, *qba);
    ContractProjections store =
        ContractProjections::Precompute(std::move(*cba), options);
    const Buchi& simplified = store.ForQueryEvents(qba->CitedEvents());
    const bool with_store =
        core::Permits(simplified, contract_events, *qba);
    ASSERT_EQ(original, with_store)
        << "contract: " << cf->ToString(vocab)
        << "\nquery: " << qf->ToString(vocab)
        << "\nconfig: " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, StorePropertyTest,
                         ::testing::Values(0, 2, 12));

TEST_F(StoreTest, ParallelPrecomputeIsIdenticalToSerial) {
  Buchi ba = BA("G(e0 -> F e1) & G(e2 -> F e3) & (e1 U e2)");
  util::ThreadPool pool(4);
  ContractProjections serial = ContractProjections::Precompute(ba);
  ContractProjections parallel =
      ContractProjections::Precompute(std::move(ba), {}, &pool);

  const ProjectionStats a = serial.stats();
  const ProjectionStats b = parallel.stats();
  EXPECT_EQ(a.cited_events, b.cited_events);
  EXPECT_EQ(a.subsets_computed, b.subsets_computed);
  EXPECT_EQ(a.distinct_partitions, b.distinct_partitions);
  EXPECT_EQ(a.full_partition_blocks, b.full_partition_blocks);
  EXPECT_EQ(a.partition_memory_bytes, b.partition_memory_bytes);

  // Every query subset resolves to the same quotient automaton.
  for (uint32_t mask = 0; mask < 16; ++mask) {
    Bitset events(4);
    for (size_t e = 0; e < 4; ++e) {
      if (mask & (1u << e)) events.Set(e);
    }
    EXPECT_EQ(automata::Serialize(serial.ForQueryEvents(events), vocab_),
              automata::Serialize(parallel.ForQueryEvents(events), vocab_))
        << "mask " << mask;
  }
}

}  // namespace
}  // namespace ctdb::projection
