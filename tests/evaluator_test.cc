#include "ltl/evaluator.h"

#include <gtest/gtest.h>

#include "ltl/parser.h"
#include "testing/generators.h"

namespace ctdb::ltl {
namespace {

/// Word-building helper: each string names the events true in one snapshot,
/// separated by spaces ("" = empty snapshot).
Snapshot Snap(const Vocabulary& vocab, const std::string& events) {
  Snapshot s(vocab.size());
  size_t start = 0;
  while (start < events.size()) {
    size_t end = events.find(' ', start);
    if (end == std::string::npos) end = events.size();
    if (end > start) {
      s.Set(*vocab.Find(events.substr(start, end - start)));
    }
    start = end + 1;
  }
  return s;
}

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() : vocab_({"p", "q", "r"}) {}

  const Formula* F(const std::string& text) {
    auto r = Parse(text, &fac_, &vocab_);
    EXPECT_TRUE(r.ok()) << r.status();
    return *r;
  }

  LassoWord Word(const std::vector<std::string>& prefix,
                 const std::vector<std::string>& cycle) {
    LassoWord w;
    for (const auto& s : prefix) w.prefix.push_back(Snap(vocab_, s));
    for (const auto& s : cycle) w.cycle.push_back(Snap(vocab_, s));
    return w;
  }

  Vocabulary vocab_;
  FormulaFactory fac_;
};

TEST_F(EvaluatorTest, Propositional) {
  const LassoWord w = Word({"p"}, {""});
  EXPECT_TRUE(Evaluate(F("p"), w));
  EXPECT_FALSE(Evaluate(F("q"), w));
  EXPECT_TRUE(Evaluate(F("p & !q"), w));
  EXPECT_TRUE(Evaluate(F("q | p"), w));
  EXPECT_TRUE(Evaluate(F("q -> r"), w));
  EXPECT_FALSE(Evaluate(F("p -> q"), w));
  EXPECT_TRUE(Evaluate(F("p <-> p"), w));
  EXPECT_FALSE(Evaluate(F("p <-> q"), w));
  EXPECT_TRUE(Evaluate(F("true"), w));
  EXPECT_FALSE(Evaluate(F("false"), w));
}

TEST_F(EvaluatorTest, NextSteps) {
  const LassoWord w = Word({"p", "q"}, {"r"});
  EXPECT_TRUE(Evaluate(F("X q"), w));
  EXPECT_TRUE(Evaluate(F("X X r"), w));
  EXPECT_TRUE(Evaluate(F("X X X r"), w));  // cycle repeats r forever
  EXPECT_FALSE(Evaluate(F("X p"), w));
}

TEST_F(EvaluatorTest, FinallyAndGlobally) {
  const LassoWord w = Word({"", ""}, {"p"});
  EXPECT_TRUE(Evaluate(F("F p"), w));
  EXPECT_FALSE(Evaluate(F("G p"), w));
  EXPECT_TRUE(Evaluate(F("F G p"), w));
  EXPECT_TRUE(Evaluate(F("G F p"), w));
  const LassoWord never = Word({"p"}, {""});
  EXPECT_FALSE(Evaluate(F("F q"), never));
  EXPECT_FALSE(Evaluate(F("G F p"), never));  // p only once
}

TEST_F(EvaluatorTest, UntilSemantics) {
  // p holds until q at position 2.
  const LassoWord w = Word({"p", "p", "q"}, {""});
  EXPECT_TRUE(Evaluate(F("p U q"), w));
  // q must actually arrive.
  const LassoWord noq = Word({}, {"p"});
  EXPECT_FALSE(Evaluate(F("p U q"), noq));
  // Gap in p before q falsifies.
  const LassoWord gap = Word({"p", "", "q"}, {""});
  EXPECT_FALSE(Evaluate(F("p U q"), gap));
  // q immediately: vacuous p.
  const LassoWord now = Word({"q"}, {""});
  EXPECT_TRUE(Evaluate(F("p U q"), now));
}

TEST_F(EvaluatorTest, WeakUntilAllowsGlobal) {
  const LassoWord forever_p = Word({}, {"p"});
  EXPECT_TRUE(Evaluate(F("p W q"), forever_p));
  EXPECT_FALSE(Evaluate(F("p U q"), forever_p));
  const LassoWord with_q = Word({"p", "q"}, {""});
  EXPECT_TRUE(Evaluate(F("p W q"), with_q));
  const LassoWord broken = Word({"p", ""}, {"q"});
  EXPECT_FALSE(Evaluate(F("p W q"), broken));
}

TEST_F(EvaluatorTest, ReleaseSemantics) {
  // q R p: p holds up to and including the instant q "releases" it.
  const LassoWord released = Word({"p", "p q"}, {""});
  EXPECT_TRUE(Evaluate(F("q R p"), released));
  const LassoWord never_released = Word({}, {"p"});
  EXPECT_TRUE(Evaluate(F("q R p"), never_released));
  const LassoWord violated = Word({"p", ""}, {"p"});
  EXPECT_FALSE(Evaluate(F("q R p"), violated));
}

TEST_F(EvaluatorTest, BeforeIsPaperDefinition) {
  // pBq ≡ ¬(¬p U q): q never happens before p does.
  const LassoWord p_first = Word({"", "p", "q"}, {""});
  EXPECT_TRUE(Evaluate(F("p B q"), p_first));
  const LassoWord q_first = Word({"", "q", "p"}, {""});
  EXPECT_FALSE(Evaluate(F("p B q"), q_first));
  const LassoWord same_instant = Word({"p q"}, {""});
  // q arrives while ¬p still... at instant 0 p is true, so ¬pUq fails at 0?
  // ¬(¬p U q): witness k=0 has q true and no ¬p requirement before it, so
  // ¬p U q holds and pBq is false: simultaneous q does NOT count as "p before".
  EXPECT_FALSE(Evaluate(F("p B q"), same_instant));
  const LassoWord neither = Word({}, {""});
  EXPECT_TRUE(Evaluate(F("p B q"), neither));
}

TEST_F(EvaluatorTest, EvaluateAtPositions) {
  const LassoWord w = Word({"p"}, {"q"});
  EXPECT_TRUE(EvaluateAt(F("p"), w, 0));
  EXPECT_FALSE(EvaluateAt(F("p"), w, 1));
  EXPECT_TRUE(EvaluateAt(F("G q"), w, 1));
  EXPECT_FALSE(EvaluateAt(F("G q"), w, 0));
}

TEST_F(EvaluatorTest, PaperTicketCRejectsSecondDateChange) {
  Vocabulary vocab({"purchase", "use", "missedFlight", "refund",
                    "dateChange"});
  FormulaFactory fac;
  auto parse = [&](const std::string& t) {
    auto r = Parse(t, &fac, &vocab);
    EXPECT_TRUE(r.ok());
    return *r;
  };
  const Formula* clause2 = parse("G(dateChange -> X(!F dateChange))");
  LassoWord two_changes;
  two_changes.prefix = {Snap(vocab, "purchase"), Snap(vocab, "dateChange"),
                        Snap(vocab, "dateChange")};
  two_changes.cycle = {Snap(vocab, "")};
  EXPECT_FALSE(Evaluate(clause2, two_changes));
  LassoWord one_change;
  one_change.prefix = {Snap(vocab, "purchase"), Snap(vocab, "dateChange"),
                       Snap(vocab, "use")};
  one_change.cycle = {Snap(vocab, "")};
  EXPECT_TRUE(Evaluate(clause2, one_change));
}

TEST_F(EvaluatorTest, DerivedOperatorIdentitiesHoldOnRandomWords) {
  Rng rng(2011);
  for (int trial = 0; trial < 200; ++trial) {
    const LassoWord w = ctdb::testing::RandomWord(&rng, 3, 3, 3);
    const Formula* a = ctdb::testing::RandomFormula(&rng, &fac_, 3, 2);
    const Formula* b = ctdb::testing::RandomFormula(&rng, &fac_, 3, 2);
    // F a ≡ true U a
    EXPECT_EQ(Evaluate(fac_.Finally(a), w),
              Evaluate(fac_.Until(fac_.True(), a), w));
    // G a ≡ ¬F¬a
    EXPECT_EQ(Evaluate(fac_.Globally(a), w),
              Evaluate(fac_.Not(fac_.Finally(fac_.Not(a))), w));
    // a W b ≡ (a U b) ∨ G a
    EXPECT_EQ(Evaluate(fac_.WeakUntil(a, b), w),
              Evaluate(fac_.Or(fac_.Until(a, b), fac_.Globally(a)), w));
    // a R b ≡ ¬(¬a U ¬b)
    EXPECT_EQ(
        Evaluate(fac_.Release(a, b), w),
        Evaluate(fac_.Not(fac_.Until(fac_.Not(a), fac_.Not(b))), w));
    // a B b ≡ ¬(¬a U b)
    EXPECT_EQ(Evaluate(fac_.Before(a, b), w),
              Evaluate(fac_.Not(fac_.Until(fac_.Not(a), b)), w));
  }
}

}  // namespace
}  // namespace ctdb::ltl
