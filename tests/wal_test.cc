// Unit tests for the WAL building blocks: CRC32C against known vectors, the
// record frame codec under truncation and bit flips, segment file naming,
// and the segment reader's torn-tail rule.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/crc32c.h"
#include "wal/record.h"
#include "wal/segment.h"

namespace ctdb::wal {
namespace {

// ---------------------------------------------------------------------------
// CRC32C

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / circulated CRC32C (Castagnoli) test vectors.
  EXPECT_EQ(util::Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(util::Crc32c(""), 0u);

  std::string zeros(32, '\0');
  EXPECT_EQ(util::Crc32c(zeros), 0x8A9136AAu);

  std::string ones(32, '\xff');
  EXPECT_EQ(util::Crc32c(ones), 0x62A8AB43u);

  std::string ramp(32, '\0');
  for (size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<char>(i);
  EXPECT_EQ(util::Crc32c(ramp), 0x46DD794Eu);
}

TEST(Crc32cTest, SeedChainsIncrementalComputation) {
  const std::string data = "hello, write-ahead log";
  const uint32_t whole = util::Crc32c(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t first = util::Crc32c(data.substr(0, split));
    const uint32_t chained = util::Crc32c(data.substr(split), first);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, SensitiveToEveryBit) {
  std::string data = "0123456789abcdef";
  const uint32_t base = util::Crc32c(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<char>(1 << bit);
      EXPECT_NE(util::Crc32c(data), base)
          << "flip of byte " << byte << " bit " << bit << " undetected";
      data[byte] ^= static_cast<char>(1 << bit);
    }
  }
}

// ---------------------------------------------------------------------------
// Record codec

// Registration shorthand: clock == sequence (the unsharded invariant) and an
// arbitrary contract id derived from the sequence.
Record Reg(uint64_t sequence, std::string name, std::string ltl) {
  return Record::Register(sequence, sequence,
                          static_cast<uint32_t>(sequence - 1), std::move(name),
                          std::move(ltl));
}

TEST(WalRecordTest, RegisterRoundTrip) {
  const Record in = Record::Register(7, 21, 4, "gold-cust",
                                     "G(request -> F grant)");
  std::string payload = EncodePayload(in);
  Record out;
  ASSERT_TRUE(DecodePayload(payload, &out).ok());
  EXPECT_EQ(out, in);
  EXPECT_EQ(out.type, RecordType::kRegister);
  EXPECT_EQ(out.sequence, 7u);
  EXPECT_EQ(out.clock, 21u);
  EXPECT_EQ(out.contract_id, 4u);
  EXPECT_EQ(out.name, "gold-cust");
  EXPECT_EQ(out.ltl_text, "G(request -> F grant)");
}

TEST(WalRecordTest, UnregisterRoundTrip) {
  const Record in = Record::Unregister(8, 23, 4);
  Record out;
  ASSERT_TRUE(DecodePayload(EncodePayload(in), &out).ok());
  EXPECT_EQ(out, in);
  EXPECT_EQ(out.type, RecordType::kUnregister);
  EXPECT_EQ(out.sequence, 8u);
  EXPECT_EQ(out.clock, 23u);
  EXPECT_EQ(out.contract_id, 4u);
  EXPECT_TRUE(out.name.empty());
  EXPECT_TRUE(out.ltl_text.empty());
}

TEST(WalRecordTest, ReplaceRoundTrip) {
  const Record in = Record::Replace(9, 25, 4, "G !breach");
  Record out;
  ASSERT_TRUE(DecodePayload(EncodePayload(in), &out).ok());
  EXPECT_EQ(out, in);
  EXPECT_EQ(out.type, RecordType::kReplace);
  EXPECT_EQ(out.clock, 25u);
  EXPECT_EQ(out.contract_id, 4u);
  EXPECT_EQ(out.ltl_text, "G !breach");
}

TEST(WalRecordTest, CheckpointRoundTrip) {
  const Record in = Record::Checkpoint(42, "checkpoint-000000000042.ctdb");
  Record out;
  ASSERT_TRUE(DecodePayload(EncodePayload(in), &out).ok());
  EXPECT_EQ(out, in);
}

TEST(WalRecordTest, EmptyStringsRoundTrip) {
  const Record in = Reg(1, "", "");
  Record out;
  ASSERT_TRUE(DecodePayload(EncodePayload(in), &out).ok());
  EXPECT_EQ(out, in);
}

TEST(WalRecordTest, PayloadRejectsTruncationAtEveryLength) {
  const std::string payload =
      EncodePayload(Reg(3, "name", "F done"));
  Record out;
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_TRUE(DecodePayload(payload.substr(0, len), &out).IsCorruption())
        << "truncated payload of " << len << " bytes accepted";
  }
}

TEST(WalRecordTest, PayloadRejectsTrailingGarbage) {
  std::string payload = EncodePayload(Reg(3, "n", "F x"));
  payload += '\0';
  Record out;
  EXPECT_TRUE(DecodePayload(payload, &out).IsCorruption());
}

TEST(WalRecordTest, PayloadRejectsUnknownType) {
  std::string payload = EncodePayload(Reg(3, "n", "F x"));
  payload[0] = '\x09';
  Record out;
  EXPECT_TRUE(DecodePayload(payload, &out).IsCorruption());
}

TEST(WalRecordTest, FrameRoundTripAdvancesOffset) {
  const Record a = Reg(1, "a", "F p");
  const Record b = Record::Checkpoint(1, "checkpoint-000000000001.ctdb");
  const std::string data = EncodeFrame(a) + EncodeFrame(b);

  size_t offset = 0;
  Record out;
  ASSERT_TRUE(DecodeFrame(data, &offset, &out).ok());
  EXPECT_EQ(out, a);
  ASSERT_TRUE(DecodeFrame(data, &offset, &out).ok());
  EXPECT_EQ(out, b);
  EXPECT_EQ(offset, data.size());
}

TEST(WalRecordTest, FrameDetectsEveryPossibleBitFlip) {
  std::string data = EncodeFrame(Reg(9, "n", "G p"));
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<char>(1 << bit);
      size_t offset = 0;
      Record out;
      EXPECT_FALSE(DecodeFrame(data, &offset, &out).ok())
          << "flip of byte " << byte << " bit " << bit << " accepted";
      data[byte] ^= static_cast<char>(1 << bit);
    }
  }
}

TEST(WalRecordTest, FrameRejectsOversizedLengthWithoutAllocating) {
  // length prefix far beyond kMaxRecordBytes: must be rejected as corruption
  // up front (a hostile 4 GiB prefix must not trigger a 4 GiB allocation).
  std::string data(kFrameHeaderBytes, '\0');
  const uint32_t huge = 0xFFFFFFF0u;
  std::memcpy(data.data(), &huge, sizeof(huge));
  size_t offset = 0;
  Record out;
  EXPECT_TRUE(DecodeFrame(data, &offset, &out).IsCorruption());
  EXPECT_FALSE(FrameLooksValid(data, 0));
}

TEST(WalRecordTest, FrameLooksValidMatchesDecodeOnWholeFrames) {
  const std::string data = EncodeFrame(Reg(2, "x", "F q"));
  EXPECT_TRUE(FrameLooksValid(data, 0));
  EXPECT_FALSE(FrameLooksValid(data, 1));
  for (size_t len = 0; len < data.size(); ++len) {
    EXPECT_FALSE(FrameLooksValid(data.substr(0, len), 0));
  }
}

// ---------------------------------------------------------------------------
// Segment naming

TEST(WalSegmentTest, FileNameRoundTrip) {
  EXPECT_EQ(SegmentFileName(42), "wal-000000000042.log");
  uint64_t index = 0;
  ASSERT_TRUE(ParseSegmentFileName("wal-000000000042.log", &index));
  EXPECT_EQ(index, 42u);
  ASSERT_TRUE(ParseSegmentFileName(SegmentFileName(0), &index));
  EXPECT_EQ(index, 0u);
}

TEST(WalSegmentTest, FileNameOrderIsAppendOrder) {
  EXPECT_LT(SegmentFileName(9), SegmentFileName(10));
  EXPECT_LT(SegmentFileName(99), SegmentFileName(100));
}

TEST(WalSegmentTest, ParseFileNameRejectsForeignNames) {
  uint64_t index = 0;
  EXPECT_FALSE(ParseSegmentFileName("wal-abc.log", &index));
  EXPECT_FALSE(ParseSegmentFileName("wal-.log", &index));
  EXPECT_FALSE(ParseSegmentFileName("wal-000000000042.log.tmp", &index));
  EXPECT_FALSE(ParseSegmentFileName("checkpoint-000000000042.ctdb", &index));
  EXPECT_FALSE(ParseSegmentFileName("", &index));
}

// ---------------------------------------------------------------------------
// Segment reader: torn-tail rule

std::string SegmentWith(const std::vector<Record>& records) {
  std::string data(kSegmentMagic);
  for (const Record& r : records) data += EncodeFrame(r);
  return data;
}

TEST(WalSegmentTest, ParsesWellFormedSegment) {
  const std::vector<Record> records = {
      Reg(1, "a", "F p"),
      Reg(2, "b", "G q"),
      Record::Checkpoint(2, "checkpoint-000000000002.ctdb"),
  };
  const std::string data = SegmentWith(records);
  ParsedSegment parsed;
  ASSERT_TRUE(ParseSegment(data, &parsed).ok());
  EXPECT_EQ(parsed.records, records);
  EXPECT_EQ(parsed.valid_bytes, data.size());
  EXPECT_FALSE(parsed.torn_tail);
}

TEST(WalSegmentTest, EmptyOrSubMagicDataIsTornNotCorrupt) {
  ParsedSegment parsed;
  ASSERT_TRUE(ParseSegment("", &parsed).ok());
  EXPECT_TRUE(parsed.records.empty());
  EXPECT_FALSE(parsed.torn_tail);

  // Crash between creat() and the magic write: a short prefix of anything.
  ASSERT_TRUE(ParseSegment("CTDB", &parsed).ok());
  EXPECT_TRUE(parsed.records.empty());
  EXPECT_TRUE(parsed.torn_tail);
}

TEST(WalSegmentTest, BadMagicIsCorruption) {
  std::string data = SegmentWith({Reg(1, "a", "F p")});
  data[0] ^= 1;
  ParsedSegment parsed;
  EXPECT_TRUE(ParseSegment(data, &parsed).IsCorruption());
}

TEST(WalSegmentTest, TruncationSweepAlwaysYieldsPrefix) {
  // Cutting the segment at EVERY byte boundary must parse as a record
  // prefix with torn_tail set (or the full set at full length) — never a
  // crash, never corruption, never a non-prefix record set.
  const std::vector<Record> records = {
      Reg(1, "alpha", "F p"),
      Reg(2, "beta", "p U q"),
      Reg(3, "gamma", "G(p -> X q)"),
  };
  const std::string data = SegmentWith(records);
  for (size_t len = 0; len <= data.size(); ++len) {
    ParsedSegment parsed;
    ASSERT_TRUE(ParseSegment(data.substr(0, len), &parsed).ok())
        << "truncation to " << len << " bytes reported corruption";
    ASSERT_LE(parsed.records.size(), records.size());
    for (size_t i = 0; i < parsed.records.size(); ++i) {
      EXPECT_EQ(parsed.records[i], records[i])
          << "truncation to " << len << " produced a non-prefix";
    }
    EXPECT_EQ(parsed.torn_tail, len != data.size() &&
                                    parsed.valid_bytes != len)
        << "at length " << len;
    EXPECT_LE(parsed.valid_bytes, len);
  }
}

TEST(WalSegmentTest, GarbageTailWithoutLaterFrameIsTorn) {
  std::string data = SegmentWith({Reg(1, "a", "F p")});
  const size_t good = data.size();
  data += "\x13\x37garbage-not-a-frame";
  ParsedSegment parsed;
  ASSERT_TRUE(ParseSegment(data, &parsed).ok());
  EXPECT_TRUE(parsed.torn_tail);
  EXPECT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.valid_bytes, good);
}

TEST(WalSegmentTest, CorruptFrameBeforeValidFrameIsCorruption) {
  // Flip one payload byte of the FIRST record: its CRC fails, but a fully
  // valid frame follows — that is mid-log damage, not a torn tail.
  const std::string first = EncodeFrame(Reg(1, "a", "F p"));
  const std::string second = EncodeFrame(Reg(2, "b", "G q"));
  std::string data(kSegmentMagic);
  data += first;
  data += second;
  data[kSegmentMagic.size() + kFrameHeaderBytes] ^= 0x40;
  ParsedSegment parsed;
  EXPECT_TRUE(ParseSegment(data, &parsed).IsCorruption());
}

TEST(WalSegmentTest, MissingBytesBeforeValidFrameIsCorruption) {
  // Drop a byte from the middle of the first frame; the second frame is
  // still intact somewhere after the damage, so this must be corruption.
  const std::string first = EncodeFrame(Reg(1, "a", "F p"));
  const std::string second = EncodeFrame(Reg(2, "b", "G q"));
  std::string data(kSegmentMagic);
  data += first.substr(0, first.size() / 2);
  data += first.substr(first.size() / 2 + 1);
  data += second;
  ParsedSegment parsed;
  EXPECT_TRUE(ParseSegment(data, &parsed).IsCorruption());
}

TEST(WalSegmentTest, BitFlipSweepNeverYieldsWrongRecords) {
  // Flip every bit of a two-record segment: the result must be corruption,
  // a torn-tail prefix, or (flips in a frame's *unvalidated* spots do not
  // exist — every payload byte is CRC-covered) the original records.
  const std::vector<Record> records = {
      Reg(1, "a", "F p"),
      Reg(2, "b", "G q"),
  };
  const std::string pristine = SegmentWith(records);
  std::string data = pristine;
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<char>(1 << bit);
      ParsedSegment parsed;
      const Status status = ParseSegment(data, &parsed);
      if (status.ok()) {
        ASSERT_LE(parsed.records.size(), records.size());
        for (size_t i = 0; i < parsed.records.size(); ++i) {
          ASSERT_EQ(parsed.records[i], records[i])
              << "byte " << byte << " bit " << bit
              << " silently altered a record";
        }
      } else {
        EXPECT_TRUE(status.IsCorruption());
      }
      data[byte] ^= static_cast<char>(1 << bit);
    }
  }
  ASSERT_EQ(data, pristine);
}

}  // namespace
}  // namespace ctdb::wal
