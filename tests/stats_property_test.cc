// Property tests for the streaming statistics accumulators (util/stats.h):
// Welford mean/stddev against a naive two-pass computation on seeded random
// streams, and merge associativity — the properties the parallel reductions
// (bench reports, sharded metrics) rely on.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"

namespace ctdb {
namespace {

/// Naive two-pass mean / sample stddev / min / max reference.
struct TwoPass {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
};

TwoPass TwoPassStats(const std::vector<double>& xs) {
  TwoPass r;
  if (xs.empty()) return r;
  double sum = 0;
  r.min = xs[0];
  r.max = xs[0];
  for (double x : xs) {
    sum += x;
    if (x < r.min) r.min = x;
    if (x > r.max) r.max = x;
  }
  r.mean = sum / static_cast<double>(xs.size());
  if (xs.size() >= 2) {
    double m2 = 0;
    for (double x : xs) m2 += (x - r.mean) * (x - r.mean);
    r.stddev = std::sqrt(m2 / static_cast<double>(xs.size() - 1));
  }
  return r;
}

/// A seeded stream with a mix of magnitudes (uniform, heavy-tailed, signed).
std::vector<double> RandomStream(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    switch (rng.Uniform(3)) {
      case 0:
        xs.push_back(rng.UniformDouble());
        break;
      case 1:
        xs.push_back(static_cast<double>(rng.UniformInt(-1000, 1000)));
        break;
      default:
        // Heavy tail: exponent up to 2^20, keeps the two-pass reference
        // numerically trustworthy while stressing Welford's stability.
        xs.push_back(rng.UniformDouble() *
                     static_cast<double>(uint64_t{1} << rng.Uniform(21)));
        break;
    }
  }
  return xs;
}

TEST(StatsPropertyTest, WelfordMatchesTwoPassOnRandomStreams) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng sizes(seed * 0x9E3779B97F4A7C15ULL);
    const size_t n = 1 + sizes.Uniform(2000);
    const std::vector<double> xs = RandomStream(seed, n);

    RunningStats stats;
    for (double x : xs) stats.Add(x);
    const TwoPass ref = TwoPassStats(xs);

    ASSERT_EQ(stats.count(), xs.size());
    const double scale = std::max(1.0, std::fabs(ref.mean));
    EXPECT_NEAR(stats.mean(), ref.mean, 1e-9 * scale) << "seed=" << seed;
    EXPECT_NEAR(stats.stddev(), ref.stddev,
                1e-9 * std::max(1.0, ref.stddev))
        << "seed=" << seed;
    EXPECT_EQ(stats.min(), ref.min) << "seed=" << seed;
    EXPECT_EQ(stats.max(), ref.max) << "seed=" << seed;
  }
}

TEST(StatsPropertyTest, EmptyAndSingleton) {
  RunningStats empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.stddev(), 0.0);
  EXPECT_EQ(empty.min(), 0.0);
  EXPECT_EQ(empty.max(), 0.0);

  RunningStats one;
  one.Add(42.5);
  EXPECT_EQ(one.count(), 1u);
  EXPECT_EQ(one.mean(), 42.5);
  EXPECT_EQ(one.stddev(), 0.0);  // n-1 denominator: undefined → 0
  EXPECT_EQ(one.min(), 42.5);
  EXPECT_EQ(one.max(), 42.5);
}

TEST(StatsPropertyTest, MergeEqualsWholeStream) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const std::vector<double> xs = RandomStream(seed ^ 0xABCD, 1500);
    Rng rng(seed);
    // Split into 1..8 contiguous chunks, accumulate each separately, merge.
    const size_t chunks = 1 + rng.Uniform(8);
    std::vector<RunningStats> parts(chunks);
    for (size_t i = 0; i < xs.size(); ++i) {
      parts[i * chunks / xs.size()].Add(xs[i]);
    }
    RunningStats merged;
    for (const RunningStats& p : parts) merged.Merge(p);

    RunningStats whole;
    for (double x : xs) whole.Add(x);

    ASSERT_EQ(merged.count(), whole.count());
    const double scale = std::max(1.0, std::fabs(whole.mean()));
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9 * scale) << "seed=" << seed;
    EXPECT_NEAR(merged.stddev(), whole.stddev(),
                1e-9 * std::max(1.0, whole.stddev()))
        << "seed=" << seed;
    EXPECT_EQ(merged.min(), whole.min());
    EXPECT_EQ(merged.max(), whole.max());
  }
}

TEST(StatsPropertyTest, MergeIsAssociative) {
  const std::vector<double> xs = RandomStream(0xFEED, 900);
  RunningStats a, b, c;
  for (size_t i = 0; i < xs.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).Add(xs[i]);
  }

  RunningStats ab = a;
  ab.Merge(b);
  RunningStats ab_c = ab;
  ab_c.Merge(c);

  RunningStats bc = b;
  bc.Merge(c);
  RunningStats a_bc = a;
  a_bc.Merge(bc);

  ASSERT_EQ(ab_c.count(), a_bc.count());
  EXPECT_NEAR(ab_c.mean(), a_bc.mean(),
              1e-9 * std::max(1.0, std::fabs(a_bc.mean())));
  EXPECT_NEAR(ab_c.stddev(), a_bc.stddev(),
              1e-9 * std::max(1.0, a_bc.stddev()));
  EXPECT_EQ(ab_c.min(), a_bc.min());
  EXPECT_EQ(ab_c.max(), a_bc.max());
}

TEST(StatsPropertyTest, MergeWithEmptyIsIdentity) {
  const std::vector<double> xs = RandomStream(7, 100);
  RunningStats filled;
  for (double x : xs) filled.Add(x);

  RunningStats left;  // empty.Merge(filled)
  left.Merge(filled);
  RunningStats right = filled;  // filled.Merge(empty)
  right.Merge(RunningStats{});

  for (const RunningStats& s : {left, right}) {
    EXPECT_EQ(s.count(), filled.count());
    EXPECT_DOUBLE_EQ(s.mean(), filled.mean());
    EXPECT_DOUBLE_EQ(s.stddev(), filled.stddev());
    EXPECT_EQ(s.min(), filled.min());
    EXPECT_EQ(s.max(), filled.max());
  }
}

}  // namespace
}  // namespace ctdb
