// Unit tests for the sharded metrics registry (obs/metrics.h): histogram
// bucket-boundary edge cases (0, exact powers of two, uint64 max), shard
// aggregation, HistogramSnapshot merge associativity, and snapshot dumps.
// The registry is process-global, so registry-level tests measure deltas or
// use uniquely named metrics.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace ctdb::obs {
namespace {

TEST(ObsMetricsTest, BucketIndexEdgeCases) {
  // Bucket 0 holds exactly the value 0; bucket i (i >= 1) holds
  // [2^(i-1), 2^i), so exact powers of two start a new bucket.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex((uint64_t{1} << 63) - 1), 63u);
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 63), 64u);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<uint64_t>::max()),
            64u);
  // Every value lands in a valid bucket.
  static_assert(kHistogramBuckets == 65);
}

TEST(ObsMetricsTest, BucketBoundsRoundTrip) {
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  for (size_t i = 1; i < kHistogramBuckets; ++i) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    const uint64_t hi = Histogram::BucketUpperBound(i);
    EXPECT_EQ(lo, uint64_t{1} << (i - 1)) << "bucket " << i;
    EXPECT_LE(lo, hi);
    // The bounds must agree with BucketIndex at both edges.
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(hi), i) << "bucket " << i;
    // ...and the value just past the upper edge belongs to the next bucket.
    if (i + 1 < kHistogramBuckets) {
      EXPECT_EQ(Histogram::BucketIndex(hi + 1), i + 1) << "bucket " << i;
    }
  }
  EXPECT_EQ(Histogram::BucketUpperBound(kHistogramBuckets - 1),
            std::numeric_limits<uint64_t>::max());
}

TEST(ObsMetricsTest, HistogramRecordsBoundariesExactly) {
  Histogram h;
  const uint64_t values[] = {0, 0, 1, 2, 3, 4, 1024, 1025,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) h.Record(v);

  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 9u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(snap.buckets[0], 2u);                        // the two zeros
  EXPECT_EQ(snap.buckets[1], 1u);                        // 1
  EXPECT_EQ(snap.buckets[2], 2u);                        // 2, 3
  EXPECT_EQ(snap.buckets[3], 1u);                        // 4
  EXPECT_EQ(snap.buckets[11], 2u);                       // 1024, 1025
  EXPECT_EQ(snap.buckets[64], 1u);                       // uint64 max
  uint64_t total = 0;
  for (uint64_t b : snap.buckets) total += b;
  EXPECT_EQ(total, snap.count);
}

TEST(ObsMetricsTest, HistogramSumOverflowWrapsButCountsStay) {
  Histogram h;
  h.Record(std::numeric_limits<uint64_t>::max());
  h.Record(2);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, 1u);  // wraps mod 2^64 — documented, not UB (atomics)
  EXPECT_EQ(snap.max, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(snap.min, 2u);
}

HistogramSnapshot SnapshotOf(const std::vector<uint64_t>& values) {
  Histogram h;
  for (uint64_t v : values) h.Record(v);
  return h.Snapshot();
}

TEST(ObsMetricsTest, SnapshotMergeIsAssociativeAndMatchesWhole) {
  Rng rng(0xC7DB0B5);
  std::vector<uint64_t> a, b, c, all;
  for (int i = 0; i < 400; ++i) {
    const uint64_t v = rng.Next() >> rng.Uniform(64);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).push_back(v);
    all.push_back(v);
  }
  const HistogramSnapshot sa = SnapshotOf(a);
  const HistogramSnapshot sb = SnapshotOf(b);
  const HistogramSnapshot sc = SnapshotOf(c);
  const HistogramSnapshot whole = SnapshotOf(all);

  HistogramSnapshot ab = sa;
  ab.Merge(sb);
  HistogramSnapshot ab_c = ab;
  ab_c.Merge(sc);

  HistogramSnapshot bc = sb;
  bc.Merge(sc);
  HistogramSnapshot a_bc = sa;
  a_bc.Merge(bc);

  for (const HistogramSnapshot* s : {&ab_c, &a_bc}) {
    EXPECT_EQ(s->count, whole.count);
    EXPECT_EQ(s->sum, whole.sum);
    EXPECT_EQ(s->min, whole.min);
    EXPECT_EQ(s->max, whole.max);
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      EXPECT_EQ(s->buckets[i], whole.buckets[i]) << "bucket " << i;
    }
  }
}

TEST(ObsMetricsTest, MergeWithEmptyIsIdentity) {
  const HistogramSnapshot filled = SnapshotOf({5, 9, 1 << 20});
  HistogramSnapshot left;  // empty.Merge(filled)
  left.Merge(filled);
  HistogramSnapshot right = filled;
  right.Merge(HistogramSnapshot{});
  for (const HistogramSnapshot* s : {&left, &right}) {
    EXPECT_EQ(s->count, filled.count);
    EXPECT_EQ(s->sum, filled.sum);
    EXPECT_EQ(s->min, filled.min);
    EXPECT_EQ(s->max, filled.max);
  }
}

TEST(ObsMetricsTest, PercentileUpperBound) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);  // buckets 1..7
  const HistogramSnapshot snap = h.Snapshot();
  // p100 upper bound covers the max; p50 lands in the bucket holding the
  // 50th sample (values 33..64 → bucket [32,64)... upper bound 127 ≥ exact).
  EXPECT_GE(snap.PercentileUpperBound(1.0), 100u);
  EXPECT_GE(snap.PercentileUpperBound(0.5), 50u);
  EXPECT_LE(snap.PercentileUpperBound(0.5), 127u);
  EXPECT_EQ(SnapshotOf({}).PercentileUpperBound(0.99), 0u);
}

TEST(ObsMetricsTest, CounterAndGaugeAggregateAcrossValues) {
  Counter c;
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);

  Gauge g;
  g.Add(10);
  g.Sub(3);
  g.Add(-2);
  EXPECT_EQ(g.Value(), 5);
  g.Sub(10);
  EXPECT_EQ(g.Value(), -5);  // signed reconstruction from wrapped uint64
}

TEST(ObsMetricsTest, RegistryGetOrCreateAndSnapshotLookups) {
  MetricsRegistry registry;  // fresh, not the process default
  Counter* c1 = registry.GetCounter("test.counter");
  Counter* c2 = registry.GetCounter("test.counter");
  EXPECT_EQ(c1, c2);  // same handle: get-or-create
  c1->Add(7);
  registry.GetGauge("test.gauge")->Add(-3);
  registry.GetHistogram("test.hist")->Record(99);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("test.counter"), 7u);
  EXPECT_EQ(snap.CounterValue("absent"), 0u);
  EXPECT_EQ(snap.GaugeValue("test.gauge"), -3);
  ASSERT_NE(snap.FindHistogram("test.hist"), nullptr);
  EXPECT_EQ(snap.FindHistogram("test.hist")->count, 1u);
  EXPECT_EQ(snap.FindHistogram("absent"), nullptr);

  // Entries are sorted by name (the dump formats rely on it).
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "test.counter");
}

#if CTDB_OBS
TEST(ObsMetricsTest, MacrosRecordIntoDefaultRegistryAndHonorEnabled) {
  const bool was_enabled = Enabled();
  SetEnabled(true);
  const MetricsSnapshot before = MetricsRegistry::Default()->Snapshot();
  CTDB_OBS_COUNT("obs_metrics_test.macro_counter", 2);
  CTDB_OBS_HIST("obs_metrics_test.macro_hist", 17);

  SetEnabled(false);
  CTDB_OBS_COUNT("obs_metrics_test.macro_counter", 100);
  SetEnabled(true);

  const MetricsSnapshot after = MetricsRegistry::Default()->Snapshot();
  EXPECT_EQ(after.CounterValue("obs_metrics_test.macro_counter") -
                before.CounterValue("obs_metrics_test.macro_counter"),
            2u);
  ASSERT_NE(after.FindHistogram("obs_metrics_test.macro_hist"), nullptr);
  SetEnabled(was_enabled);
}
#endif  // CTDB_OBS

TEST(ObsMetricsTest, DumpsContainEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("c.one")->Add(1);
  registry.GetGauge("g.one")->Add(2);
  registry.GetHistogram("h.one")->Record(3);
  const MetricsSnapshot snap = registry.Snapshot();

  const std::string text = snap.ToString();
  EXPECT_NE(text.find("c.one"), std::string::npos);
  EXPECT_NE(text.find("g.one"), std::string::npos);
  EXPECT_NE(text.find("h.one"), std::string::npos);

  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"c.one\":1"), std::string::npos);
  // Balanced braces (cheap structural sanity; CI validates with a real
  // parser via `python3 -m json.tool` on the bench artifacts).
  int depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace ctdb::obs
