#include "index/condition.h"

#include <gtest/gtest.h>

namespace ctdb::index {
namespace {

using automata::Buchi;
using automata::StateId;

Label L(std::initializer_list<Literal> lits) {
  return Label::FromLiterals(std::vector<Literal>(lits));
}

Buchi Single(const Label& label) {
  Buchi ba;
  const StateId s = ba.AddState();
  ba.SetFinal(s);
  ba.AddTransition(0, label, s);
  ba.AddTransition(s, Label(), s);
  return ba;
}

Bitset Events(std::initializer_list<EventId> events, size_t n = 4) {
  Bitset b(n);
  for (EventId e : events) b.Set(e);
  return b;
}

class ConditionTest : public ::testing::Test {
 protected:
  ConditionTest() : vocab_({"a", "b", "c", "d"}) {
    index_.Insert(0, Single(L({{0, false}})), Events({0}));
    index_.Insert(1, Single(L({{1, false}})), Events({1}));
    index_.Insert(2, Single(L({{0, false}, {1, true}})), Events({0, 1}));
  }
  Vocabulary vocab_;
  PrefilterIndex index_;
};

TEST_F(ConditionTest, ConstantsEvaluate) {
  EXPECT_EQ(Condition::True().Evaluate(index_).Count(), 3u);
  EXPECT_TRUE(Condition::False().Evaluate(index_).None());
}

TEST_F(ConditionTest, LeafEvaluatesViaIndex) {
  const Condition leaf = Condition::Leaf(L({{0, false}}));
  const Bitset got = leaf.Evaluate(index_);
  EXPECT_TRUE(got.Test(0));
  EXPECT_FALSE(got.Test(1));
  EXPECT_TRUE(got.Test(2));
}

TEST_F(ConditionTest, TrueLabelLeafBecomesTrue) {
  const Condition leaf = Condition::Leaf(Label());
  EXPECT_EQ(leaf.kind(), Condition::Kind::kTrue);
}

TEST_F(ConditionTest, AndIntersects) {
  const Condition c = Condition::And({Condition::Leaf(L({{0, false}})),
                                      Condition::Leaf(L({{1, true}}))});
  const Bitset got = c.Evaluate(index_);
  EXPECT_EQ(got.ToVector(), (std::vector<size_t>{2}));
}

TEST_F(ConditionTest, OrUnions) {
  const Condition c = Condition::Or({Condition::Leaf(L({{0, false}})),
                                     Condition::Leaf(L({{1, false}}))});
  const Bitset got = c.Evaluate(index_);
  EXPECT_EQ(got.Count(), 3u);
}

TEST_F(ConditionTest, SimplificationRules) {
  const Condition leaf = Condition::Leaf(L({{0, false}}));
  // Absorption of constants.
  EXPECT_EQ(Condition::And({Condition::True(), leaf}), leaf);
  EXPECT_EQ(Condition::And({Condition::False(), leaf}).kind(),
            Condition::Kind::kFalse);
  EXPECT_EQ(Condition::Or({Condition::False(), leaf}), leaf);
  EXPECT_EQ(Condition::Or({Condition::True(), leaf}).kind(),
            Condition::Kind::kTrue);
  // Empty n-ary forms.
  EXPECT_EQ(Condition::And({}).kind(), Condition::Kind::kTrue);
  EXPECT_EQ(Condition::Or({}).kind(), Condition::Kind::kFalse);
  // Deduplication.
  EXPECT_EQ(Condition::And({leaf, leaf}), leaf);
  // Flattening.
  const Condition nested =
      Condition::And({Condition::And({leaf}), Condition::Leaf(L({{1, true}}))});
  EXPECT_EQ(nested.children().size(), 2u);
}

TEST_F(ConditionTest, SizeAndToString) {
  const Condition c = Condition::Or({
      Condition::Leaf(L({{2, false}})),
      Condition::And({Condition::Leaf(L({{0, false}})),
                      Condition::Leaf(L({{1, false}}))}),
  });
  EXPECT_EQ(c.Size(), 5u);  // Or + leaf + And + two leaves
  EXPECT_EQ(c.ToString(vocab_), "(S(c) | (S(a) & S(b)))");
  EXPECT_EQ(Condition::True().ToString(vocab_), "TRUE");
}

TEST_F(ConditionTest, EvaluationIsMonotone) {
  // Adding a contract to the index can only grow every condition's result.
  const Condition c = Condition::Or({
      Condition::Leaf(L({{0, false}})),
      Condition::And({Condition::Leaf(L({{1, false}})),
                      Condition::Leaf(L({{1, true}}))}),
  });
  const Bitset before = c.Evaluate(index_);
  PrefilterIndex bigger = index_;
  bigger.Insert(3, Single(L({{0, false}, {1, false}})), Events({0, 1}));
  Bitset after = c.Evaluate(bigger);
  Bitset before_resized = before;
  before_resized.Resize(after.size());
  EXPECT_TRUE(before_resized.IsSubsetOf(after));
}

}  // namespace
}  // namespace ctdb::index
