#include "core/witness.h"

#include <gtest/gtest.h>

#include "automata/word.h"
#include "broker/database.h"
#include "core/permission.h"
#include "ltl/evaluator.h"
#include "ltl/parser.h"
#include "testing/generators.h"
#include "translate/ltl_to_ba.h"

namespace ctdb::core {
namespace {

using automata::AcceptsWord;
using automata::Buchi;

class WitnessTest : public ::testing::Test {
 protected:
  WitnessTest() : vocab_(ctdb::testing::TestVocabulary(4)) {}

  Buchi BA(const std::string& text, const ltl::Formula** formula = nullptr) {
    auto f = ltl::Parse(text, &fac_, &vocab_);
    EXPECT_TRUE(f.ok()) << f.status();
    if (formula != nullptr) *formula = *f;
    auto ba = translate::LtlToBuchi(*f, &fac_);
    EXPECT_TRUE(ba.ok()) << ba.status();
    return std::move(*ba);
  }

  Vocabulary vocab_;
  ltl::FormulaFactory fac_;
};

TEST_F(WitnessTest, WitnessExistsIffPermitted) {
  const ltl::Formula* cf = nullptr;
  const Buchi contract = BA("G(e0 -> F e1)", &cf);
  Bitset events;
  cf->CollectEvents(&events);

  const Buchi yes = BA("F e1");
  EXPECT_TRUE(Permits(contract, events, yes));
  EXPECT_TRUE(FindWitness(contract, events, yes).has_value());

  const Buchi no = BA("F e2");  // e2 not cited by the contract
  EXPECT_FALSE(Permits(contract, events, no));
  EXPECT_FALSE(FindWitness(contract, events, no).has_value());
}

TEST_F(WitnessTest, WitnessIsAcceptedByBothAutomata) {
  const ltl::Formula* cf = nullptr;
  const ltl::Formula* qf = nullptr;
  const Buchi contract = BA("G(e0 -> F e1) & G(!e2)", &cf);
  const Buchi query = BA("F(e0 & F e1)", &qf);
  Bitset events;
  cf->CollectEvents(&events);
  auto witness = FindWitness(contract, events, query);
  ASSERT_TRUE(witness.has_value());
  ASSERT_TRUE(witness->Valid());
  EXPECT_TRUE(AcceptsWord(contract, *witness));
  EXPECT_TRUE(AcceptsWord(query, *witness));
  // And semantically, via the independent evaluator.
  EXPECT_TRUE(ltl::Evaluate(cf, *witness));
  EXPECT_TRUE(ltl::Evaluate(qf, *witness));
}

TEST_F(WitnessTest, WitnessStaysInContractVocabulary) {
  const ltl::Formula* cf = nullptr;
  const Buchi contract = BA("G F e0", &cf);
  Bitset events;
  cf->CollectEvents(&events);
  const Buchi query = BA("F e0");
  auto witness = FindWitness(contract, events, query);
  ASSERT_TRUE(witness.has_value());
  for (size_t i = 0; i < witness->PositionCount(); ++i) {
    Bitset outside = witness->At(i);
    outside.Subtract(events);
    EXPECT_TRUE(outside.None())
        << "witness uses an event the contract does not cite";
  }
}

/// Property: on random contract/query pairs, FindWitness agrees with
/// Permits, and every produced witness validates against both automata and
/// both formulas.
TEST_F(WitnessTest, RandomPairsProperty) {
  Rng rng(0x417  );
  const size_t kEvents = 3;
  for (int trial = 0; trial < 150; ++trial) {
    const ltl::Formula* cf =
        ctdb::testing::RandomFormula(&rng, &fac_, kEvents, 3);
    const ltl::Formula* qf =
        ctdb::testing::RandomFormula(&rng, &fac_, kEvents, 2);
    auto cba = translate::LtlToBuchi(cf, &fac_);
    auto qba = translate::LtlToBuchi(qf, &fac_);
    ASSERT_TRUE(cba.ok());
    ASSERT_TRUE(qba.ok());
    Bitset events;
    cf->CollectEvents(&events);
    events.Resize(kEvents);

    const bool permitted = Permits(*cba, events, *qba);
    auto witness = FindWitness(*cba, events, *qba);
    ASSERT_EQ(permitted, witness.has_value())
        << cf->ToString(vocab_) << " | " << qf->ToString(vocab_);
    if (witness.has_value()) {
      EXPECT_TRUE(AcceptsWord(*cba, *witness));
      EXPECT_TRUE(AcceptsWord(*qba, *witness));
      EXPECT_TRUE(ltl::Evaluate(cf, *witness));
      EXPECT_TRUE(ltl::Evaluate(qf, *witness));
    }
  }
}

TEST_F(WitnessTest, BrokerCollectsAlignedWitnesses) {
  broker::ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "G(p -> F q)").ok());
  ASSERT_TRUE(db.Register("b", "G(!q)").ok());
  ASSERT_TRUE(db.Register("c", "F q & G(p -> F q)").ok());
  broker::QueryOptions options;
  options.collect_witnesses = true;
  auto r = db.Query("F q", options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->matches.size(), 2u);
  ASSERT_EQ(r->witnesses.size(), r->matches.size());
  for (size_t i = 0; i < r->matches.size(); ++i) {
    const auto& contract = db.contract(r->matches[i]);
    ASSERT_TRUE(r->witnesses[i].Valid());
    EXPECT_TRUE(AcceptsWord(contract.automaton(), r->witnesses[i]));
  }
  // Without the flag no witnesses are produced.
  auto r2 = db.Query("F q");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->witnesses.empty());
}

TEST_F(WitnessTest, PaperTicketWitnessReadsSensibly) {
  Vocabulary vocab(
      {"purchase", "use", "missedFlight", "refund", "dateChange"});
  ltl::FormulaFactory fac;
  auto cf = ltl::Parse(
      "(purchase B (use | missedFlight | refund | dateChange)) & "
      "G(dateChange -> !F refund) & G F purchase",
      &fac, &vocab);
  ASSERT_TRUE(cf.ok());
  auto cba = translate::LtlToBuchi(*cf, &fac);
  ASSERT_TRUE(cba.ok());
  auto qf = ltl::Parse("F refund", &fac, &vocab);
  auto qba = translate::LtlToBuchi(*qf, &fac);
  ASSERT_TRUE(qba.ok());
  Bitset events;
  (*cf)->CollectEvents(&events);
  auto witness = FindWitness(*cba, events, *qba);
  ASSERT_TRUE(witness.has_value());
  // The rendering is stable enough to show users.
  EXPECT_FALSE(witness->ToString(vocab).empty());
  EXPECT_TRUE(automata::AcceptsWord(*qba, *witness));
}

}  // namespace
}  // namespace ctdb::core
