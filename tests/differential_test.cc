// The differential engine itself: a clean run over several seeds must report
// zero mismatches, and every FaultInjection hook must make exactly its own
// oracle fire — the "testing the tester" requirement. If one of these fault
// tests ever goes green-on-clean, the corresponding oracle has stopped
// looking at real data.

#include "testing/differential.h"

#include <gtest/gtest.h>

namespace ctdb::testing {
namespace {

DiffOptions SmallOptions() {
  DiffOptions options;
  options.seed = 7;
  options.iters = 3;
  options.contracts = 4;
  options.queries = 2;
  options.words_per_formula = 4;
  return options;
}

bool AnyOracle(const DiffReport& report, const std::string& oracle) {
  for (const DiffMismatch& m : report.mismatches) {
    if (m.oracle == oracle) return true;
  }
  return false;
}

TEST(DifferentialTest, CleanRunHasNoMismatches) {
  DiffOptions options = SmallOptions();
  options.iters = 5;
  const DiffReport report = RunDifferential(options);
  for (const DiffMismatch& m : report.mismatches) {
    ADD_FAILURE() << FormatMismatch(m);
  }
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.iterations, 5u);
  EXPECT_GT(report.checks, 100u);
}

TEST(DifferentialTest, SameSeedReproducesSameCheckCount) {
  const DiffReport a = RunDifferential(SmallOptions());
  const DiffReport b = RunDifferential(SmallOptions());
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.mismatches.size(), b.mismatches.size());
}

TEST(DifferentialTest, DetectsCorruptUnindexedAnswer) {
  DiffOptions options = SmallOptions();
  options.faults.corrupt_unindexed = true;
  const DiffReport report = RunDifferential(options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(AnyOracle(report, "indexed-vs-unindexed"));
}

TEST(DifferentialTest, DetectsCorruptBatchAnswer) {
  DiffOptions options = SmallOptions();
  options.faults.corrupt_batch = true;
  const DiffReport report = RunDifferential(options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(AnyOracle(report, "batch-vs-serial"));
}

TEST(DifferentialTest, DetectsCorruptThreadedAnswer) {
  DiffOptions options = SmallOptions();
  options.faults.corrupt_threaded = true;
  const DiffReport report = RunDifferential(options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(AnyOracle(report, "threaded-vs-serial"));
}

TEST(DifferentialTest, DetectsCorruptReloadedAnswer) {
  DiffOptions options = SmallOptions();
  options.faults.corrupt_reloaded = true;
  const DiffReport report = RunDifferential(options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(AnyOracle(report, "persistence-roundtrip"));
}

TEST(DifferentialTest, DetectsFlippedReferenceVerdict) {
  DiffOptions options = SmallOptions();
  options.faults.flip_reference = true;
  const DiffReport report = RunDifferential(options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(AnyOracle(report, "reference-permission"));
}

TEST(DifferentialTest, DetectsBrokenMetamorphicTransform) {
  DiffOptions options = SmallOptions();
  options.iters = 40;  // the F/G swap needs a query whose verdict flips
  options.faults.break_metamorphic = true;
  const DiffReport report = RunDifferential(options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(AnyOracle(report, "metamorphic"));
}

MonitorDiffOptions SmallMonitorOptions() {
  MonitorDiffOptions options;
  options.seed = 7;
  options.iters = 10;
  return options;
}

TEST(MonitorDifferentialTest, CleanRunHasNoMismatches) {
  const DiffReport report = RunMonitorDifferential(SmallMonitorOptions());
  for (const DiffMismatch& m : report.mismatches) {
    ADD_FAILURE() << FormatMismatch(m);
  }
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.iterations, 10u);
  EXPECT_GT(report.checks, 50u);
}

TEST(MonitorDifferentialTest, SameSeedReproducesSameCheckCount) {
  const DiffReport a = RunMonitorDifferential(SmallMonitorOptions());
  const DiffReport b = RunMonitorDifferential(SmallMonitorOptions());
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.mismatches.size(), b.mismatches.size());
}

TEST(MonitorDifferentialTest, DetectsFlippedNaiveVerdict) {
  MonitorDiffOptions options = SmallMonitorOptions();
  options.flip_naive = true;
  const DiffReport report = RunMonitorDifferential(options);
  ASSERT_FALSE(report.ok());
  // The fault is injected into the naive oracle only, so exactly the
  // incremental-vs-naive comparison — not the self-consistency oracles —
  // must catch it.
  EXPECT_TRUE(AnyOracle(report, "incremental-vs-naive"));
  for (const DiffMismatch& m : report.mismatches) {
    EXPECT_EQ(m.oracle, "incremental-vs-naive") << FormatMismatch(m);
  }
}

TEST(DifferentialTest, MismatchCarriesReproductionSeed) {
  DiffOptions options = SmallOptions();
  options.faults.corrupt_batch = true;
  const DiffReport report = RunDifferential(options);
  ASSERT_FALSE(report.ok());
  const DiffMismatch& m = report.mismatches.front();
  EXPECT_GE(m.seed, options.seed);
  const std::string line = FormatMismatch(m);
  EXPECT_NE(line.find("--iters=1"), std::string::npos) << line;
  EXPECT_NE(line.find("--seed="), std::string::npos) << line;
}

}  // namespace
}  // namespace ctdb::testing
