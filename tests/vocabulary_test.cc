#include "base/vocabulary.h"

#include <gtest/gtest.h>

namespace ctdb {
namespace {

TEST(VocabularyTest, InternAssignsDenseIds) {
  Vocabulary v;
  EXPECT_EQ(*v.Intern("purchase"), 0u);
  EXPECT_EQ(*v.Intern("use"), 1u);
  EXPECT_EQ(*v.Intern("refund"), 2u);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.Name(1), "use");
}

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary v;
  const EventId a = *v.Intern("x");
  const EventId b = *v.Intern("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), 1u);
}

TEST(VocabularyTest, FindExistingAndMissing) {
  Vocabulary v({"a", "b"});
  EXPECT_EQ(*v.Find("b"), 1u);
  EXPECT_TRUE(v.Find("zzz").status().IsNotFound());
  EXPECT_TRUE(v.Contains("a"));
  EXPECT_FALSE(v.Contains("zzz"));
}

TEST(VocabularyTest, RejectsIllegalNames) {
  Vocabulary v;
  EXPECT_TRUE(v.Intern("").status().IsInvalidArgument());
  EXPECT_TRUE(v.Intern("1abc").status().IsInvalidArgument());
  EXPECT_TRUE(v.Intern("has space").status().IsInvalidArgument());
  EXPECT_TRUE(v.Intern("has-dash").status().IsInvalidArgument());
  EXPECT_TRUE(v.Intern("_ok").ok());
  EXPECT_TRUE(v.Intern("ok_2").ok());
}

TEST(VocabularyTest, NamesInIdOrder) {
  Vocabulary v({"c", "a", "b"});
  EXPECT_EQ(v.names(), (std::vector<std::string>{"c", "a", "b"}));
}

}  // namespace
}  // namespace ctdb
