// Crash-recovery property test: kill the process at EVERY injected crash
// point (for real, with fork + _exit — no destructors, no flushes) while it
// registers contracts and checkpoints, then recover the WAL directory and
// check the acceptance property from DESIGN.md §10:
//
//   * recovery always succeeds (a clean kill can only tear the tail),
//   * every ACKNOWLEDGED registration is present (at most the unacked tail
//     is lost),
//   * the recovered contract set is a prefix of the intended one, and
//   * query results match a serial in-memory oracle over that prefix.
//
// The schedule is discovered, not hard-coded: a first in-process run records
// the crash-point trace, then one forked child per position k is killed at
// exactly the k-th hit.
//
// (The suite name deliberately avoids the "Wal"/"Database" substrings so
// CI's TSan shard — which can't follow fork() — does not pick it up.)

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <iterator>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "broker/database.h"
#include "broker/durable.h"
#include "broker/persistence.h"
#include "shard/sharded.h"
#include "testing/crash.h"
#include "testing/temp_dir.h"
#include "util/file_util.h"
#include "wal/wal.h"

namespace ctdb {
namespace {

constexpr int kContracts = 6;
constexpr int kCheckpointAfter = 3;  ///< run a checkpoint after this many

std::string NthName(int i) { return "crash-contract-" + std::to_string(i); }
std::string NthLtl(int i) {
  switch (i % 3) {
    case 0: return "F pay";
    case 1: return "G(request -> F grant)";
    default: return "pay U deliver";
  }
}

const std::vector<std::string>& OracleQueries() {
  static const std::vector<std::string> queries = {
      "F pay", "G(request -> F grant)", "pay U deliver", "F deliver"};
  return queries;
}

/// The workload under test: sequential registrations with an ack file
/// appended after each Ok, and one checkpoint in the middle. Returns false
/// on any unexpected (non-crash) failure.
bool RunScenario(const std::string& dir) {
  wal::DurabilityOptions options;
  // kAlways makes the crash-point schedule deterministic: every Register is
  // its own write+fsync group, so run k of the sweep kills at the same
  // logical instant the enumeration run observed.
  options.fsync_policy = wal::FsyncPolicy::kAlways;
  auto db = broker::DurableDatabase::Open(dir + "/wal", options);
  if (!db.ok()) return false;
  const int ack_fd = ::open((dir + "/acks").c_str(),
                            O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (ack_fd < 0) return false;
  bool ok = true;
  for (int i = 0; i < kContracts && ok; ++i) {
    auto id = (*db)->Register(NthName(i), NthLtl(i));
    if (!id.ok()) {
      ok = false;
      break;
    }
    const std::string line = std::to_string(i) + "\n";
    if (::write(ack_fd, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size())) {
      ok = false;
      break;
    }
    if (i + 1 == kCheckpointAfter && !(*db)->Checkpoint().ok()) ok = false;
  }
  ::close(ack_fd);
  if (ok && !(*db)->Close().ok()) ok = false;
  return ok;
}

/// Number of acknowledged registrations the (possibly killed) scenario run
/// managed to record.
size_t CountAcks(const std::string& dir) {
  auto data = util::ReadFileToString(dir + "/acks");
  if (!data.ok()) return 0;
  size_t lines = 0;
  for (char c : *data) lines += c == '\n';
  return lines;
}

/// Checks the recovered database against a serial in-memory oracle holding
/// the same prefix of the intended registrations.
void VerifyAgainstOracle(const broker::ContractDatabase& recovered) {
  const size_t n = recovered.size();
  ASSERT_LE(n, static_cast<size_t>(kContracts));
  broker::ContractDatabase oracle;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(oracle.Register(NthName(static_cast<int>(i)),
                                NthLtl(static_cast<int>(i)))
                    .ok());
    EXPECT_EQ(recovered.contract(static_cast<uint32_t>(i)).name,
              NthName(static_cast<int>(i)))
        << "recovered set is not a prefix";
    EXPECT_EQ(recovered.contract(static_cast<uint32_t>(i)).ltl_text,
              NthLtl(static_cast<int>(i)));
  }
  for (const std::string& query : OracleQueries()) {
    auto got = recovered.Query(query);
    auto want = oracle.Query(query);
    // A query citing an event no recovered contract has interned yet fails
    // with NotFound on BOTH sides — outcome parity is part of the property.
    ASSERT_EQ(got.ok(), want.ok())
        << "query '" << query << "': recovered " << got.status().ToString()
        << " vs oracle " << want.status().ToString();
    if (got.ok()) {
      EXPECT_EQ(got->matches, want->matches) << "query: " << query;
    }
  }
}

TEST(CrashRecoveryTest, EnumerationRunHitsCrashPoints) {
  testing::TempDir dir("crashenum");
  std::vector<std::string> sites;
  testing::RecordCrashPoints(&sites);
  const bool ok = RunScenario(dir.path());
  testing::StopCrashPoints();
  ASSERT_TRUE(ok);
  // The scenario must exercise the interesting sites; if someone renames or
  // drops one, this test points straight at the schedule change.
  const std::vector<std::string> expected = {
      "wal.segment.after_open",     "wal.writer.after_write",
      "wal.writer.after_fsync",     "wal.writer.before_ack",
      "file.atomic.after_tmp",      "file.atomic.after_rename",
      "wal.checkpoint.after_publish", "wal.checkpoint.after_record",
      "wal.gc.after_delete",
  };
  for (const std::string& site : expected) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << "scenario never reached crash point " << site;
  }
}

TEST(CrashRecoveryTest, KillAtEveryCrashPointLosesOnlyUnackedTail) {
  // Discover the schedule length with an in-process run.
  size_t schedule = 0;
  {
    testing::TempDir dir("crashenum");
    std::vector<std::string> sites;
    testing::RecordCrashPoints(&sites);
    ASSERT_TRUE(RunScenario(dir.path()));
    testing::StopCrashPoints();
    schedule = sites.size();
  }
  ASSERT_GT(schedule, 0u);

  // Kill at hit k for every k, plus one run past the end (clean exit).
  for (size_t k = 1; k <= schedule + 1; ++k) {
    testing::TempDir dir("crashkill");
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: arm the k-th overall hit, run, and report. _exit always —
      // never return into gtest from the forked child.
      testing::ArmCrashPoint("", k);
      const bool ok = RunScenario(dir.path());
      testing::StopCrashPoints();
      ::_exit(ok ? 0 : 7);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << "child died abnormally at k=" << k;
    const int code = WEXITSTATUS(wstatus);
    ASSERT_TRUE(code == 0 || code == testing::kCrashExitCode)
        << "child failed (exit " << code << ") at k=" << k;
    if (k <= schedule) {
      EXPECT_EQ(code, testing::kCrashExitCode)
          << "crash point " << k << " not reached on the child's run";
    } else {
      EXPECT_EQ(code, 0) << "clean run past the schedule still crashed";
    }

    const size_t acked = CountAcks(dir.path());
    broker::RecoveryStats stats;
    auto recovered = broker::RecoverDatabase(dir.path() + "/wal", {}, &stats);
    ASSERT_TRUE(recovered.ok())
        << "recovery failed at k=" << k << ": "
        << recovered.status().ToString();
    EXPECT_GE((*recovered)->size(), acked)
        << "lost an acknowledged registration at k=" << k;
    if (code == 0) {
      EXPECT_EQ((*recovered)->size(), static_cast<size_t>(kContracts));
    }
    VerifyAgainstOracle(**recovered);

    // And the directory is reusable: a fresh writer continues the log.
    auto reopened = broker::DurableDatabase::Open(dir.path() + "/wal");
    ASSERT_TRUE(reopened.ok())
        << "reopen failed at k=" << k << ": " << reopened.status().ToString();
    auto id = (*reopened)->Register("post-crash", "F pay");
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_TRUE((*reopened)->Close().ok());
  }
}

// ---------------------------------------------------------------------------
// Sharded crash matrix: the same kill-at-every-point sweep against a
// shard::ShardedDatabase. The acceptance property generalizes per shard:
// each shard's recovered contracts are a prefix of the contracts routed to
// it, every ACKNOWLEDGED global id is present, and query results match a
// serial oracle over exactly the surviving (possibly id-ragged) set.
// (Suite name avoids the TSan filter's substrings — fork() is not TSan-able.)

/// The sharded workload: sequential registrations acked by global id, one
/// fan-out checkpoint in the middle.
bool RunShardedScenario(const std::string& dir, size_t shards) {
  wal::DurabilityOptions options;
  options.fsync_policy = wal::FsyncPolicy::kAlways;
  broker::DatabaseOptions db_options;
  db_options.shards = shards;
  auto db = shard::ShardedDatabase::Open(dir + "/db", options, db_options);
  if (!db.ok()) return false;
  const int ack_fd = ::open((dir + "/acks").c_str(),
                            O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (ack_fd < 0) return false;
  bool ok = true;
  for (int i = 0; i < kContracts && ok; ++i) {
    auto id = (*db)->Register(NthName(i), NthLtl(i));
    if (!id.ok()) {
      ok = false;
      break;
    }
    const std::string line = std::to_string(*id) + "\n";
    if (::write(ack_fd, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size())) {
      ok = false;
      break;
    }
    if (i + 1 == kCheckpointAfter && !(*db)->Checkpoint().ok()) ok = false;
  }
  ::close(ack_fd);
  if (ok && !(*db)->Close().ok()) ok = false;
  return ok;
}

/// Global ids the (possibly killed) scenario run acknowledged.
std::vector<uint32_t> ReadAckedIds(const std::string& dir) {
  std::vector<uint32_t> ids;
  auto data = util::ReadFileToString(dir + "/acks");
  if (!data.ok()) return ids;
  uint32_t current = 0;
  bool in_number = false;
  for (char c : *data) {
    if (c == '\n') {
      if (in_number) ids.push_back(current);
      current = 0;
      in_number = false;
    } else if (c >= '0' && c <= '9') {
      current = current * 10 + static_cast<uint32_t>(c - '0');
      in_number = true;
    }
  }
  return ids;
}

/// Full acceptance check of a recovered sharded directory: per-shard
/// prefixes of the intended routing, no lost acks, oracle query parity over
/// the surviving set.
void VerifyShardedRecovery(const std::string& dir, size_t shards,
                           size_t expect_total_when_clean, bool clean_run) {
  // A kill inside the manifest's own atomic write leaves no topology — and
  // therefore can have acked nothing (the database never opened). Recovery
  // of that window is simply a fresh create with the intended shard count;
  // past it, shards = 0 must adopt the surviving manifest.
  broker::DatabaseOptions open_options;
  const bool manifest_survived =
      shard::ReadManifest(dir + "/db").ok();
  if (!manifest_survived) {
    ASSERT_TRUE(ReadAckedIds(dir).empty())
        << "acks recorded before the topology existed";
    open_options.shards = shards;
  } else {
    open_options.shards = 0;
  }
  auto db = shard::ShardedDatabase::Open(dir + "/db", {}, open_options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ((*db)->shard_count(), shards);

  // The striped id space: shard k holds locals 0..size_k-1, i.e. global ids
  // {l*shards + k}. Sequential registration assigned global id i to the
  // i-th intended contract, so every surviving global id g must carry
  // NthName(g)/NthLtl(g) — per-shard prefixes of the intended assignment.
  std::vector<uint32_t> surviving;
  for (size_t k = 0; k < shards; ++k) {
    const broker::DurableDatabase& s = (*db)->shard(k);
    for (uint32_t local = 0; local < s.size(); ++local) {
      const uint32_t gid =
          shard::ShardedDatabase::GlobalId(k, local, shards);
      ASSERT_LT(gid, static_cast<uint32_t>(kContracts));
      EXPECT_EQ(s.contract(local).name, NthName(static_cast<int>(gid)))
          << "shard " << k << " local " << local;
      EXPECT_EQ(s.contract(local).ltl_text, NthLtl(static_cast<int>(gid)));
      surviving.push_back(gid);
    }
  }
  std::sort(surviving.begin(), surviving.end());
  EXPECT_EQ((*db)->size(), surviving.size());
  if (clean_run) {
    EXPECT_EQ(surviving.size(), expect_total_when_clean);
  }

  // Durability: everything acknowledged survived the kill.
  for (uint32_t acked : ReadAckedIds(dir)) {
    EXPECT_TRUE(
        std::binary_search(surviving.begin(), surviving.end(), acked))
        << "lost acknowledged global id " << acked;
  }

  // Query parity: a serial oracle over exactly the surviving contracts, in
  // ascending global id order; sharded matches map through that order.
  broker::ContractDatabase oracle;
  for (uint32_t gid : surviving) {
    ASSERT_TRUE(oracle
                    .Register(NthName(static_cast<int>(gid)),
                              NthLtl(static_cast<int>(gid)))
                    .ok());
  }
  for (const std::string& query : OracleQueries()) {
    auto got = (*db)->Query(query);
    auto want = oracle.Query(query);
    ASSERT_EQ(got.ok(), want.ok())
        << "query '" << query << "': sharded " << got.status().ToString()
        << " vs oracle " << want.status().ToString();
    if (!got.ok()) continue;
    std::vector<uint32_t> mapped;
    for (uint32_t oracle_id : want->matches) {
      mapped.push_back(surviving[oracle_id]);
    }
    EXPECT_EQ(got->matches, mapped) << "query: " << query;
  }

  // The directory stays writable: the next registration fills the lowest
  // hole the crash tore into the striped id space.
  auto next = (*db)->Register("post-crash", "F pay");
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_FALSE(
      std::binary_search(surviving.begin(), surviving.end(), *next));
  EXPECT_TRUE((*db)->Close().ok());
}

class ShardedCrashRecoveryTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardedCrashRecoveryTest, KillAtEveryCrashPointLosesOnlyUnackedTail) {
  const size_t shards = GetParam();

  // Discover the schedule length with an in-process run. Parallel shard
  // opens/checkpoints may permute WHICH site the k-th hit lands on between
  // runs, but the total hit count is deterministic — and the acceptance
  // property must hold wherever the kill lands anyway.
  size_t schedule = 0;
  {
    testing::TempDir dir("shardenum");
    std::vector<std::string> sites;
    testing::RecordCrashPoints(&sites);
    ASSERT_TRUE(RunShardedScenario(dir.path(), shards));
    testing::StopCrashPoints();
    schedule = sites.size();
  }
  ASSERT_GT(schedule, 0u);

  for (size_t k = 1; k <= schedule + 1; ++k) {
    testing::TempDir dir("shardkill");
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      testing::ArmCrashPoint("", k);
      const bool ok = RunShardedScenario(dir.path(), shards);
      testing::StopCrashPoints();
      ::_exit(ok ? 0 : 7);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << "child died abnormally at k=" << k;
    const int code = WEXITSTATUS(wstatus);
    ASSERT_TRUE(code == 0 || code == testing::kCrashExitCode)
        << "child failed (exit " << code << ") at k=" << k;
    if (k > schedule) {
      EXPECT_EQ(code, 0) << "clean run past the schedule still crashed";
    }
    VerifyShardedRecovery(dir.path(), shards,
                          static_cast<size_t>(kContracts),
                          /*clean_run=*/code == 0);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedCrashRecoveryTest,
                         ::testing::Values(2u, 4u),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "shards" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Lifecycle crash matrix (DESIGN.md §14): the same fork-and-kill sweep over
// a stream that also retires (Unregister) and supersedes (Replace)
// contracts, unsharded and sharded. The acceptance property extends §10's:
//
//   * recovery succeeds and yields an exact prefix of the mutation stream
//     (ops are issued sequentially under FsyncPolicy::kAlways, so at most
//     the one in-flight mutation is lost),
//   * every ACKNOWLEDGED mutation survives, and
//   * QueryAsOf(s) matches an in-memory oracle replay of the prefix ≤ s for
//     EVERY clock s the recovered log covers — time travel is crash-durable.

struct LifecycleOp {
  char kind;        ///< 'R' register, 'U' unregister, 'X' replace
  int target;       ///< U/X: index into registration order; unused for R
  const char* ltl;  ///< R/X: the specification
};

constexpr LifecycleOp kLifecycleStream[] = {
    {'R', -1, "F pay"},
    {'R', -1, "G(request -> F grant)"},
    {'R', -1, "pay U deliver"},
    {'X', 1, "F deliver"},
    {'U', 2, nullptr},
    {'R', -1, "G(pay -> X deliver)"},
    {'X', 0, "G(pay -> F deliver)"},
    {'U', 1, nullptr},
};
constexpr size_t kLifecycleOps = std::size(kLifecycleStream);
constexpr size_t kLifecycleCheckpointAfter = 4;

/// Plays the fixed lifecycle stream against `db`, acking each durable
/// mutation's global contract id (one line per op, in stream order).
bool RunLifecycleOps(broker::Broker* db, const std::string& dir) {
  const int ack_fd = ::open((dir + "/acks").c_str(),
                            O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (ack_fd < 0) return false;
  std::vector<uint32_t> regs;
  bool ok = true;
  size_t done = 0;
  for (const LifecycleOp& op : kLifecycleStream) {
    uint32_t gid = 0;
    if (op.kind == 'R') {
      auto id = db->Register("lc-" + std::to_string(regs.size()), op.ltl);
      if (!id.ok()) {
        ok = false;
        break;
      }
      gid = *id;
      regs.push_back(gid);
    } else if (op.kind == 'U') {
      gid = regs[static_cast<size_t>(op.target)];
      if (!db->Unregister(gid).ok()) {
        ok = false;
        break;
      }
    } else {
      gid = regs[static_cast<size_t>(op.target)];
      if (!db->Replace(gid, op.ltl).ok()) {
        ok = false;
        break;
      }
    }
    const std::string line = std::to_string(gid) + "\n";
    if (::write(ack_fd, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size())) {
      ok = false;
      break;
    }
    ++done;
    if (done == kLifecycleCheckpointAfter && !db->Checkpoint().ok()) {
      ok = false;
      break;
    }
  }
  ::close(ack_fd);
  return ok;
}

bool RunLifecycleScenario(const std::string& dir) {
  wal::DurabilityOptions options;
  options.fsync_policy = wal::FsyncPolicy::kAlways;
  auto db = broker::DurableDatabase::Open(dir + "/wal", options);
  if (!db.ok()) return false;
  bool ok = RunLifecycleOps(db->get(), dir);
  if (ok && !(*db)->Close().ok()) ok = false;
  return ok;
}

bool RunShardedLifecycleScenario(const std::string& dir, size_t shards) {
  wal::DurabilityOptions options;
  options.fsync_policy = wal::FsyncPolicy::kAlways;
  broker::DatabaseOptions db_options;
  db_options.shards = shards;
  auto db = shard::ShardedDatabase::Open(dir + "/db", options, db_options);
  if (!db.ok()) return false;
  bool ok = RunLifecycleOps(db->get(), dir);
  if (ok && !(*db)->Close().ok()) ok = false;
  return ok;
}

/// \brief As-of parity between a recovered database and an oracle replay.
///
/// `t` is the number of stream mutations that survived; `ref_gids` holds the
/// global id each stream op targeted on a clean reference run (routing is
/// deterministic, so kill runs assign the same ids). Checks Query at
/// as_of = 0 (latest) and at every clock 1..t against a fresh in-memory
/// replay of the surviving prefix, mapping oracle dense ids back to global
/// ids through the registration order.
template <typename Database>
void VerifyLifecycleParity(const Database& recovered, uint64_t t,
                           const std::vector<uint32_t>& ref_gids) {
  ASSERT_LE(t, kLifecycleOps);
  broker::ContractDatabase oracle;
  std::vector<uint32_t> dense_to_gid;  // oracle id -> global id
  for (size_t i = 0; i < t; ++i) {
    const LifecycleOp& op = kLifecycleStream[i];
    const uint32_t gid = ref_gids[i];
    if (op.kind == 'R') {
      auto dense = oracle.Register("lc-" + std::to_string(dense_to_gid.size()),
                                   op.ltl);
      ASSERT_TRUE(dense.ok()) << dense.status().ToString();
      ASSERT_EQ(*dense, dense_to_gid.size());
      dense_to_gid.push_back(gid);
    } else {
      uint32_t dense = 0;
      while (dense_to_gid[dense] != gid) ++dense;
      if (op.kind == 'U') {
        ASSERT_TRUE(oracle.Unregister(dense).ok());
      } else {
        ASSERT_TRUE(oracle.Replace(dense, op.ltl).ok());
      }
    }
  }
  for (uint64_t s = 0; s <= t; ++s) {
    broker::QueryOptions options;
    options.as_of = s;
    for (const std::string& query : OracleQueries()) {
      auto got = recovered.Query(query, options);
      auto want = oracle.Query(query, options);
      ASSERT_EQ(got.ok(), want.ok())
          << "as_of=" << s << " query '" << query << "': recovered "
          << got.status().ToString() << " vs oracle "
          << want.status().ToString();
      if (!got.ok()) continue;
      std::vector<uint32_t> mapped;
      for (uint32_t dense : want->matches) mapped.push_back(dense_to_gid[dense]);
      std::sort(mapped.begin(), mapped.end());
      std::vector<uint32_t> actual = got->matches;
      std::sort(actual.begin(), actual.end());
      EXPECT_EQ(actual, mapped) << "as_of=" << s << " query: " << query;
    }
  }
}

TEST(CrashRecoveryTest, LifecycleScenarioHitsLifecycleCrashPoints) {
  testing::TempDir dir("lcenum");
  std::vector<std::string> sites;
  testing::RecordCrashPoints(&sites);
  const bool ok = RunLifecycleScenario(dir.path());
  testing::StopCrashPoints();
  ASSERT_TRUE(ok);
  const std::vector<std::string> expected = {
      "durable.unregister.after_apply", "durable.replace.after_apply",
      "wal.writer.after_write",         "wal.writer.before_ack",
      "wal.checkpoint.after_publish",
  };
  for (const std::string& site : expected) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << "lifecycle scenario never reached crash point " << site;
  }
}

TEST(CrashRecoveryTest, LifecycleKillSweepKeepsAckedOpsAndAsOfParity) {
  // Reference clean run: captures the (deterministic) id each op targets.
  std::vector<uint32_t> ref_gids;
  {
    testing::TempDir ref_dir("lcref");
    ASSERT_TRUE(RunLifecycleScenario(ref_dir.path()));
    ref_gids = ReadAckedIds(ref_dir.path());
  }
  ASSERT_EQ(ref_gids.size(), kLifecycleOps);

  size_t schedule = 0;
  {
    testing::TempDir dir("lcenum");
    std::vector<std::string> sites;
    testing::RecordCrashPoints(&sites);
    ASSERT_TRUE(RunLifecycleScenario(dir.path()));
    testing::StopCrashPoints();
    schedule = sites.size();
  }
  ASSERT_GT(schedule, 0u);

  for (size_t k = 1; k <= schedule + 1; ++k) {
    testing::TempDir dir("lckill");
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      testing::ArmCrashPoint("", k);
      const bool ok = RunLifecycleScenario(dir.path());
      testing::StopCrashPoints();
      ::_exit(ok ? 0 : 7);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << "child died abnormally at k=" << k;
    const int code = WEXITSTATUS(wstatus);
    ASSERT_TRUE(code == 0 || code == testing::kCrashExitCode)
        << "child failed (exit " << code << ") at k=" << k;

    const size_t acked = CountAcks(dir.path());
    broker::RecoveryStats stats;
    auto recovered = broker::RecoverDatabase(dir.path() + "/wal", {}, &stats);
    ASSERT_TRUE(recovered.ok())
        << "recovery failed at k=" << k << ": "
        << recovered.status().ToString();
    const uint64_t t = (*recovered)->op_count();
    // Sequential fsynced ops: survivors are an exact prefix, and only the
    // one in-flight mutation may be lost past the acked count.
    ASSERT_GE(t, acked) << "lost an acknowledged mutation at k=" << k;
    ASSERT_LE(t, acked + 1) << "phantom mutation at k=" << k;
    EXPECT_EQ((*recovered)->last_sequence(), t);
    if (code == 0) {
      EXPECT_EQ(t, kLifecycleOps);
    }
    VerifyLifecycleParity(**recovered, t, ref_gids);

    // The directory is reusable and the clock continues past the crash.
    auto reopened = broker::DurableDatabase::Open(dir.path() + "/wal");
    ASSERT_TRUE(reopened.ok())
        << "reopen failed at k=" << k << ": " << reopened.status().ToString();
    EXPECT_EQ((*reopened)->last_sequence(), t);
    auto id = (*reopened)->Register("post-crash", "F pay");
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ((*reopened)->last_sequence(), t + 1);
    EXPECT_TRUE((*reopened)->Close().ok());
  }
}

class ShardedLifecycleCrashTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardedLifecycleCrashTest, KillSweepKeepsAckedOpsAndAsOfParity) {
  const size_t shards = GetParam();

  std::vector<uint32_t> ref_gids;
  {
    testing::TempDir ref_dir("shlcref");
    ASSERT_TRUE(RunShardedLifecycleScenario(ref_dir.path(), shards));
    ref_gids = ReadAckedIds(ref_dir.path());
  }
  ASSERT_EQ(ref_gids.size(), kLifecycleOps);

  size_t schedule = 0;
  {
    testing::TempDir dir("shlcenum");
    std::vector<std::string> sites;
    testing::RecordCrashPoints(&sites);
    ASSERT_TRUE(RunShardedLifecycleScenario(dir.path(), shards));
    testing::StopCrashPoints();
    schedule = sites.size();
  }
  ASSERT_GT(schedule, 0u);

  for (size_t k = 1; k <= schedule + 1; ++k) {
    testing::TempDir dir("shlckill");
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      testing::ArmCrashPoint("", k);
      const bool ok = RunShardedLifecycleScenario(dir.path(), shards);
      testing::StopCrashPoints();
      ::_exit(ok ? 0 : 7);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << "child died abnormally at k=" << k;
    const int code = WEXITSTATUS(wstatus);
    ASSERT_TRUE(code == 0 || code == testing::kCrashExitCode)
        << "child failed (exit " << code << ") at k=" << k;

    // A kill inside the manifest's own write leaves no topology; see
    // VerifyShardedRecovery for the rationale.
    broker::DatabaseOptions open_options;
    if (!shard::ReadManifest(dir.path() + "/db").ok()) {
      ASSERT_TRUE(ReadAckedIds(dir.path()).empty());
      open_options.shards = shards;
    } else {
      open_options.shards = 0;
    }
    auto db = shard::ShardedDatabase::Open(dir.path() + "/db", {},
                                           open_options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();

    const size_t acked = CountAcks(dir.path());
    uint64_t t = 0;
    for (size_t s = 0; s < shards; ++s) t += (*db)->shard(s).op_count();
    ASSERT_GE(t, acked) << "lost an acknowledged mutation at k=" << k;
    ASSERT_LE(t, acked + 1) << "phantom mutation at k=" << k;
    if (t > 0) {
      EXPECT_EQ((*db)->last_sequence(), t);
    }
    if (code == 0) {
      EXPECT_EQ(t, kLifecycleOps);
    }
    VerifyLifecycleParity(**db, t, ref_gids);

    auto id = (*db)->Register("post-crash", "F pay");
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ((*db)->last_sequence(), t + 1);
    EXPECT_TRUE((*db)->Close().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedLifecycleCrashTest,
                         ::testing::Values(2u, 4u),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "shards" + std::to_string(info.param);
                         });

TEST(CrashRecoveryTest, KillInsideAtomicSaveKeepsPreviousImage) {
  // Satellite check for SaveDatabaseToFile: a kill inside the temp-write /
  // rename dance never leaves a damaged image where a good one stood.
  testing::TempDir dir("crashsave");
  const std::string path = dir.file("image.ctdb");
  {
    broker::ContractDatabase db;
    ASSERT_TRUE(db.Register("first", "F pay").ok());
    ASSERT_TRUE(broker::SaveDatabaseToFile(db, path).ok());
  }
  for (const char* site : {"file.atomic.after_tmp", "file.atomic.after_rename"}) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      testing::ArmCrashPoint(site, 1);
      broker::ContractDatabase db;
      if (!db.Register("first", "F pay").ok() ||
          !db.Register("second", "G(request -> F grant)").ok()) {
        ::_exit(7);
      }
      (void)broker::SaveDatabaseToFile(db, path);
      ::_exit(0);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(WEXITSTATUS(wstatus), testing::kCrashExitCode) << site;
    // Whatever instant the kill hit, the path holds a complete image: the
    // old one (crash before rename) or the new one (crash after).
    auto loaded = broker::LoadDatabaseFromFile(path);
    ASSERT_TRUE(loaded.ok()) << site << ": " << loaded.status().ToString();
    EXPECT_TRUE((*loaded)->size() == 1u || (*loaded)->size() == 2u);
  }
}

}  // namespace
}  // namespace ctdb
