// Crash-recovery property test: kill the process at EVERY injected crash
// point (for real, with fork + _exit — no destructors, no flushes) while it
// registers contracts and checkpoints, then recover the WAL directory and
// check the acceptance property from DESIGN.md §10:
//
//   * recovery always succeeds (a clean kill can only tear the tail),
//   * every ACKNOWLEDGED registration is present (at most the unacked tail
//     is lost),
//   * the recovered contract set is a prefix of the intended one, and
//   * query results match a serial in-memory oracle over that prefix.
//
// The schedule is discovered, not hard-coded: a first in-process run records
// the crash-point trace, then one forked child per position k is killed at
// exactly the k-th hit.
//
// (The suite name deliberately avoids the "Wal"/"Database" substrings so
// CI's TSan shard — which can't follow fork() — does not pick it up.)

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "broker/database.h"
#include "broker/durable.h"
#include "broker/persistence.h"
#include "shard/sharded.h"
#include "testing/crash.h"
#include "testing/temp_dir.h"
#include "util/file_util.h"
#include "wal/wal.h"

namespace ctdb {
namespace {

constexpr int kContracts = 6;
constexpr int kCheckpointAfter = 3;  ///< run a checkpoint after this many

std::string NthName(int i) { return "crash-contract-" + std::to_string(i); }
std::string NthLtl(int i) {
  switch (i % 3) {
    case 0: return "F pay";
    case 1: return "G(request -> F grant)";
    default: return "pay U deliver";
  }
}

const std::vector<std::string>& OracleQueries() {
  static const std::vector<std::string> queries = {
      "F pay", "G(request -> F grant)", "pay U deliver", "F deliver"};
  return queries;
}

/// The workload under test: sequential registrations with an ack file
/// appended after each Ok, and one checkpoint in the middle. Returns false
/// on any unexpected (non-crash) failure.
bool RunScenario(const std::string& dir) {
  wal::DurabilityOptions options;
  // kAlways makes the crash-point schedule deterministic: every Register is
  // its own write+fsync group, so run k of the sweep kills at the same
  // logical instant the enumeration run observed.
  options.fsync_policy = wal::FsyncPolicy::kAlways;
  auto db = broker::DurableDatabase::Open(dir + "/wal", options);
  if (!db.ok()) return false;
  const int ack_fd = ::open((dir + "/acks").c_str(),
                            O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (ack_fd < 0) return false;
  bool ok = true;
  for (int i = 0; i < kContracts && ok; ++i) {
    auto id = (*db)->Register(NthName(i), NthLtl(i));
    if (!id.ok()) {
      ok = false;
      break;
    }
    const std::string line = std::to_string(i) + "\n";
    if (::write(ack_fd, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size())) {
      ok = false;
      break;
    }
    if (i + 1 == kCheckpointAfter && !(*db)->Checkpoint().ok()) ok = false;
  }
  ::close(ack_fd);
  if (ok && !(*db)->Close().ok()) ok = false;
  return ok;
}

/// Number of acknowledged registrations the (possibly killed) scenario run
/// managed to record.
size_t CountAcks(const std::string& dir) {
  auto data = util::ReadFileToString(dir + "/acks");
  if (!data.ok()) return 0;
  size_t lines = 0;
  for (char c : *data) lines += c == '\n';
  return lines;
}

/// Checks the recovered database against a serial in-memory oracle holding
/// the same prefix of the intended registrations.
void VerifyAgainstOracle(const broker::ContractDatabase& recovered) {
  const size_t n = recovered.size();
  ASSERT_LE(n, static_cast<size_t>(kContracts));
  broker::ContractDatabase oracle;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(oracle.Register(NthName(static_cast<int>(i)),
                                NthLtl(static_cast<int>(i)))
                    .ok());
    EXPECT_EQ(recovered.contract(static_cast<uint32_t>(i)).name,
              NthName(static_cast<int>(i)))
        << "recovered set is not a prefix";
    EXPECT_EQ(recovered.contract(static_cast<uint32_t>(i)).ltl_text,
              NthLtl(static_cast<int>(i)));
  }
  for (const std::string& query : OracleQueries()) {
    auto got = recovered.Query(query);
    auto want = oracle.Query(query);
    // A query citing an event no recovered contract has interned yet fails
    // with NotFound on BOTH sides — outcome parity is part of the property.
    ASSERT_EQ(got.ok(), want.ok())
        << "query '" << query << "': recovered " << got.status().ToString()
        << " vs oracle " << want.status().ToString();
    if (got.ok()) {
      EXPECT_EQ(got->matches, want->matches) << "query: " << query;
    }
  }
}

TEST(CrashRecoveryTest, EnumerationRunHitsCrashPoints) {
  testing::TempDir dir("crashenum");
  std::vector<std::string> sites;
  testing::RecordCrashPoints(&sites);
  const bool ok = RunScenario(dir.path());
  testing::StopCrashPoints();
  ASSERT_TRUE(ok);
  // The scenario must exercise the interesting sites; if someone renames or
  // drops one, this test points straight at the schedule change.
  const std::vector<std::string> expected = {
      "wal.segment.after_open",     "wal.writer.after_write",
      "wal.writer.after_fsync",     "wal.writer.before_ack",
      "file.atomic.after_tmp",      "file.atomic.after_rename",
      "wal.checkpoint.after_publish", "wal.checkpoint.after_record",
      "wal.gc.after_delete",
  };
  for (const std::string& site : expected) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << "scenario never reached crash point " << site;
  }
}

TEST(CrashRecoveryTest, KillAtEveryCrashPointLosesOnlyUnackedTail) {
  // Discover the schedule length with an in-process run.
  size_t schedule = 0;
  {
    testing::TempDir dir("crashenum");
    std::vector<std::string> sites;
    testing::RecordCrashPoints(&sites);
    ASSERT_TRUE(RunScenario(dir.path()));
    testing::StopCrashPoints();
    schedule = sites.size();
  }
  ASSERT_GT(schedule, 0u);

  // Kill at hit k for every k, plus one run past the end (clean exit).
  for (size_t k = 1; k <= schedule + 1; ++k) {
    testing::TempDir dir("crashkill");
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: arm the k-th overall hit, run, and report. _exit always —
      // never return into gtest from the forked child.
      testing::ArmCrashPoint("", k);
      const bool ok = RunScenario(dir.path());
      testing::StopCrashPoints();
      ::_exit(ok ? 0 : 7);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << "child died abnormally at k=" << k;
    const int code = WEXITSTATUS(wstatus);
    ASSERT_TRUE(code == 0 || code == testing::kCrashExitCode)
        << "child failed (exit " << code << ") at k=" << k;
    if (k <= schedule) {
      EXPECT_EQ(code, testing::kCrashExitCode)
          << "crash point " << k << " not reached on the child's run";
    } else {
      EXPECT_EQ(code, 0) << "clean run past the schedule still crashed";
    }

    const size_t acked = CountAcks(dir.path());
    broker::RecoveryStats stats;
    auto recovered = broker::RecoverDatabase(dir.path() + "/wal", {}, &stats);
    ASSERT_TRUE(recovered.ok())
        << "recovery failed at k=" << k << ": "
        << recovered.status().ToString();
    EXPECT_GE((*recovered)->size(), acked)
        << "lost an acknowledged registration at k=" << k;
    if (code == 0) {
      EXPECT_EQ((*recovered)->size(), static_cast<size_t>(kContracts));
    }
    VerifyAgainstOracle(**recovered);

    // And the directory is reusable: a fresh writer continues the log.
    auto reopened = broker::DurableDatabase::Open(dir.path() + "/wal");
    ASSERT_TRUE(reopened.ok())
        << "reopen failed at k=" << k << ": " << reopened.status().ToString();
    auto id = (*reopened)->Register("post-crash", "F pay");
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_TRUE((*reopened)->Close().ok());
  }
}

// ---------------------------------------------------------------------------
// Sharded crash matrix: the same kill-at-every-point sweep against a
// shard::ShardedDatabase. The acceptance property generalizes per shard:
// each shard's recovered contracts are a prefix of the contracts routed to
// it, every ACKNOWLEDGED global id is present, and query results match a
// serial oracle over exactly the surviving (possibly id-ragged) set.
// (Suite name avoids the TSan filter's substrings — fork() is not TSan-able.)

/// The sharded workload: sequential registrations acked by global id, one
/// fan-out checkpoint in the middle.
bool RunShardedScenario(const std::string& dir, size_t shards) {
  wal::DurabilityOptions options;
  options.fsync_policy = wal::FsyncPolicy::kAlways;
  broker::DatabaseOptions db_options;
  db_options.shards = shards;
  auto db = shard::ShardedDatabase::Open(dir + "/db", options, db_options);
  if (!db.ok()) return false;
  const int ack_fd = ::open((dir + "/acks").c_str(),
                            O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (ack_fd < 0) return false;
  bool ok = true;
  for (int i = 0; i < kContracts && ok; ++i) {
    auto id = (*db)->Register(NthName(i), NthLtl(i));
    if (!id.ok()) {
      ok = false;
      break;
    }
    const std::string line = std::to_string(*id) + "\n";
    if (::write(ack_fd, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size())) {
      ok = false;
      break;
    }
    if (i + 1 == kCheckpointAfter && !(*db)->Checkpoint().ok()) ok = false;
  }
  ::close(ack_fd);
  if (ok && !(*db)->Close().ok()) ok = false;
  return ok;
}

/// Global ids the (possibly killed) scenario run acknowledged.
std::vector<uint32_t> ReadAckedIds(const std::string& dir) {
  std::vector<uint32_t> ids;
  auto data = util::ReadFileToString(dir + "/acks");
  if (!data.ok()) return ids;
  uint32_t current = 0;
  bool in_number = false;
  for (char c : *data) {
    if (c == '\n') {
      if (in_number) ids.push_back(current);
      current = 0;
      in_number = false;
    } else if (c >= '0' && c <= '9') {
      current = current * 10 + static_cast<uint32_t>(c - '0');
      in_number = true;
    }
  }
  return ids;
}

/// Full acceptance check of a recovered sharded directory: per-shard
/// prefixes of the intended routing, no lost acks, oracle query parity over
/// the surviving set.
void VerifyShardedRecovery(const std::string& dir, size_t shards,
                           size_t expect_total_when_clean, bool clean_run) {
  // A kill inside the manifest's own atomic write leaves no topology — and
  // therefore can have acked nothing (the database never opened). Recovery
  // of that window is simply a fresh create with the intended shard count;
  // past it, shards = 0 must adopt the surviving manifest.
  broker::DatabaseOptions open_options;
  const bool manifest_survived =
      shard::ReadManifest(dir + "/db").ok();
  if (!manifest_survived) {
    ASSERT_TRUE(ReadAckedIds(dir).empty())
        << "acks recorded before the topology existed";
    open_options.shards = shards;
  } else {
    open_options.shards = 0;
  }
  auto db = shard::ShardedDatabase::Open(dir + "/db", {}, open_options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ((*db)->shard_count(), shards);

  // The striped id space: shard k holds locals 0..size_k-1, i.e. global ids
  // {l*shards + k}. Sequential registration assigned global id i to the
  // i-th intended contract, so every surviving global id g must carry
  // NthName(g)/NthLtl(g) — per-shard prefixes of the intended assignment.
  std::vector<uint32_t> surviving;
  for (size_t k = 0; k < shards; ++k) {
    const broker::DurableDatabase& s = (*db)->shard(k);
    for (uint32_t local = 0; local < s.size(); ++local) {
      const uint32_t gid =
          shard::ShardedDatabase::GlobalId(k, local, shards);
      ASSERT_LT(gid, static_cast<uint32_t>(kContracts));
      EXPECT_EQ(s.contract(local).name, NthName(static_cast<int>(gid)))
          << "shard " << k << " local " << local;
      EXPECT_EQ(s.contract(local).ltl_text, NthLtl(static_cast<int>(gid)));
      surviving.push_back(gid);
    }
  }
  std::sort(surviving.begin(), surviving.end());
  EXPECT_EQ((*db)->size(), surviving.size());
  if (clean_run) {
    EXPECT_EQ(surviving.size(), expect_total_when_clean);
  }

  // Durability: everything acknowledged survived the kill.
  for (uint32_t acked : ReadAckedIds(dir)) {
    EXPECT_TRUE(
        std::binary_search(surviving.begin(), surviving.end(), acked))
        << "lost acknowledged global id " << acked;
  }

  // Query parity: a serial oracle over exactly the surviving contracts, in
  // ascending global id order; sharded matches map through that order.
  broker::ContractDatabase oracle;
  for (uint32_t gid : surviving) {
    ASSERT_TRUE(oracle
                    .Register(NthName(static_cast<int>(gid)),
                              NthLtl(static_cast<int>(gid)))
                    .ok());
  }
  for (const std::string& query : OracleQueries()) {
    auto got = (*db)->Query(query);
    auto want = oracle.Query(query);
    ASSERT_EQ(got.ok(), want.ok())
        << "query '" << query << "': sharded " << got.status().ToString()
        << " vs oracle " << want.status().ToString();
    if (!got.ok()) continue;
    std::vector<uint32_t> mapped;
    for (uint32_t oracle_id : want->matches) {
      mapped.push_back(surviving[oracle_id]);
    }
    EXPECT_EQ(got->matches, mapped) << "query: " << query;
  }

  // The directory stays writable: the next registration fills the lowest
  // hole the crash tore into the striped id space.
  auto next = (*db)->Register("post-crash", "F pay");
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_FALSE(
      std::binary_search(surviving.begin(), surviving.end(), *next));
  EXPECT_TRUE((*db)->Close().ok());
}

class ShardedCrashRecoveryTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardedCrashRecoveryTest, KillAtEveryCrashPointLosesOnlyUnackedTail) {
  const size_t shards = GetParam();

  // Discover the schedule length with an in-process run. Parallel shard
  // opens/checkpoints may permute WHICH site the k-th hit lands on between
  // runs, but the total hit count is deterministic — and the acceptance
  // property must hold wherever the kill lands anyway.
  size_t schedule = 0;
  {
    testing::TempDir dir("shardenum");
    std::vector<std::string> sites;
    testing::RecordCrashPoints(&sites);
    ASSERT_TRUE(RunShardedScenario(dir.path(), shards));
    testing::StopCrashPoints();
    schedule = sites.size();
  }
  ASSERT_GT(schedule, 0u);

  for (size_t k = 1; k <= schedule + 1; ++k) {
    testing::TempDir dir("shardkill");
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      testing::ArmCrashPoint("", k);
      const bool ok = RunShardedScenario(dir.path(), shards);
      testing::StopCrashPoints();
      ::_exit(ok ? 0 : 7);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << "child died abnormally at k=" << k;
    const int code = WEXITSTATUS(wstatus);
    ASSERT_TRUE(code == 0 || code == testing::kCrashExitCode)
        << "child failed (exit " << code << ") at k=" << k;
    if (k > schedule) {
      EXPECT_EQ(code, 0) << "clean run past the schedule still crashed";
    }
    VerifyShardedRecovery(dir.path(), shards,
                          static_cast<size_t>(kContracts),
                          /*clean_run=*/code == 0);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedCrashRecoveryTest,
                         ::testing::Values(2u, 4u),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "shards" + std::to_string(info.param);
                         });

TEST(CrashRecoveryTest, KillInsideAtomicSaveKeepsPreviousImage) {
  // Satellite check for SaveDatabaseToFile: a kill inside the temp-write /
  // rename dance never leaves a damaged image where a good one stood.
  testing::TempDir dir("crashsave");
  const std::string path = dir.file("image.ctdb");
  {
    broker::ContractDatabase db;
    ASSERT_TRUE(db.Register("first", "F pay").ok());
    ASSERT_TRUE(broker::SaveDatabaseToFile(db, path).ok());
  }
  for (const char* site : {"file.atomic.after_tmp", "file.atomic.after_rename"}) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      testing::ArmCrashPoint(site, 1);
      broker::ContractDatabase db;
      if (!db.Register("first", "F pay").ok() ||
          !db.Register("second", "G(request -> F grant)").ok()) {
        ::_exit(7);
      }
      (void)broker::SaveDatabaseToFile(db, path);
      ::_exit(0);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(WEXITSTATUS(wstatus), testing::kCrashExitCode) << site;
    // Whatever instant the kill hit, the path holds a complete image: the
    // old one (crash before rename) or the new one (crash after).
    auto loaded = broker::LoadDatabaseFromFile(path);
    ASSERT_TRUE(loaded.ok()) << site << ": " << loaded.status().ToString();
    EXPECT_TRUE((*loaded)->size() == 1u || (*loaded)->size() == 2u);
  }
}

}  // namespace
}  // namespace ctdb
