// Unit tests for the contract lifecycle (DESIGN.md §14): Unregister and
// Replace semantics on the in-memory database, system-period history and
// as-of time travel, retention pruning, durable round trips of the whole
// lifecycle, and the sharded router's lifecycle routing.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "broker/database.h"
#include "broker/durable.h"
#include "broker/persistence.h"
#include "shard/sharded.h"
#include "testing/temp_dir.h"

namespace ctdb {
namespace {

using broker::ContractDatabase;
using broker::QueryOptions;

std::vector<uint32_t> Matches(const ContractDatabase& db,
                              const std::string& query, uint64_t as_of = 0) {
  QueryOptions options;
  options.as_of = as_of;
  auto result = db.Query(query, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result->matches : std::vector<uint32_t>{};
}

TEST(LifecycleTest, UnregisterRemovesFromLiveSet) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "F pay").ok());
  ASSERT_TRUE(db.Register("b", "F pay").ok());
  ASSERT_TRUE(db.Register("c", "G !pay").ok());
  EXPECT_EQ(db.size(), 3u);

  auto clock = db.Unregister(1);
  ASSERT_TRUE(clock.ok()) << clock.status().ToString();
  EXPECT_EQ(*clock, 4u);  // fourth mutation
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(Matches(db, "F pay"), (std::vector<uint32_t>{0}));

  // Ids are never reused: the next registration gets a fresh slot.
  auto next = db.Register("d", "F pay");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 3u);
  EXPECT_EQ(Matches(db, "F pay"), (std::vector<uint32_t>{0, 3}));
}

TEST(LifecycleTest, UnregisterDeadOrUnknownIdIsNotFound) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "F pay").ok());
  ASSERT_TRUE(db.Unregister(0).ok());
  EXPECT_TRUE(db.Unregister(0).status().IsNotFound());   // already dead
  EXPECT_TRUE(db.Unregister(7).status().IsNotFound());   // never existed
  EXPECT_TRUE(db.Replace(0, "G pay").status().IsNotFound());
}

TEST(LifecycleTest, ReplaceSupersedesSpecKeepingIdAndName) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("strict", "G !pay").ok());
  ASSERT_TRUE(db.Register("other", "F pay").ok());
  EXPECT_EQ(Matches(db, "F pay"), (std::vector<uint32_t>{1}));

  auto clock = db.Replace(0, "F pay");
  ASSERT_TRUE(clock.ok()) << clock.status().ToString();
  EXPECT_EQ(*clock, 3u);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.contract(0).name, "strict");
  EXPECT_EQ(db.contract(0).ltl_text, "F pay");
  EXPECT_EQ(db.contract(0).valid_from, 3u);
  EXPECT_EQ(Matches(db, "F pay"), (std::vector<uint32_t>{0, 1}));
}

TEST(LifecycleTest, ReplaceRejectsMalformedSpecLeavingContractIntact) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "F pay").ok());
  EXPECT_FALSE(db.Replace(0, "F ((").ok());
  EXPECT_EQ(db.contract(0).ltl_text, "F pay");
  EXPECT_EQ(db.last_sequence(), 1u);  // failed replace does not tick
  EXPECT_EQ(Matches(db, "F pay"), (std::vector<uint32_t>{0}));
}

TEST(LifecycleTest, QueryAsOfSeesEveryHistoricalState) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "F pay").ok());      // clock 1
  ASSERT_TRUE(db.Register("b", "F pay").ok());      // clock 2
  ASSERT_TRUE(db.Unregister(0).ok());               // clock 3
  ASSERT_TRUE(db.Replace(1, "G !pay").ok());        // clock 4

  EXPECT_EQ(Matches(db, "F pay", 1), (std::vector<uint32_t>{0}));
  EXPECT_EQ(Matches(db, "F pay", 2), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(Matches(db, "F pay", 3), (std::vector<uint32_t>{1}));
  EXPECT_EQ(Matches(db, "F pay", 4), (std::vector<uint32_t>{}));
  EXPECT_EQ(Matches(db, "G !pay", 4), (std::vector<uint32_t>{1}));
  // as_of 0 and as_of past the clock both answer latest.
  EXPECT_EQ(Matches(db, "F pay", 0), (std::vector<uint32_t>{}));
  EXPECT_EQ(Matches(db, "F pay", 99), (std::vector<uint32_t>{}));
}

TEST(LifecycleTest, AsOfBelowPrunedFloorIsInvalidArgument) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "F pay").ok());   // clock 1
  ASSERT_TRUE(db.Replace(0, "G !pay").ok());     // clock 2
  ASSERT_TRUE(db.Replace(0, "F pay").ok());      // clock 3
  db.PruneHistory(2);

  QueryOptions options;
  options.as_of = 1;
  EXPECT_TRUE(db.Query("F pay", options).status().IsInvalidArgument());
  // At and above the floor, history still answers.
  EXPECT_EQ(Matches(db, "G !pay", 2), (std::vector<uint32_t>{0}));
  EXPECT_EQ(Matches(db, "F pay", 3), (std::vector<uint32_t>{0}));
}

TEST(LifecycleTest, AsOfWitnessesSatisfyTheQuery) {
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "F pay").ok());
  ASSERT_TRUE(db.Replace(0, "G !pay").ok());

  QueryOptions options;
  options.as_of = 1;
  options.collect_witnesses = true;
  auto result = db.Query("F pay", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->matches, (std::vector<uint32_t>{0}));
  ASSERT_EQ(result->witnesses.size(), 1u);
  EXPECT_FALSE(result->witnesses[0].prefix.empty() &&
               result->witnesses[0].cycle.empty());
}

TEST(LifecycleTest, PersistenceRoundTripsHistoryAndClock) {
  testing::TempDir dir("lcpersist");
  ContractDatabase db;
  ASSERT_TRUE(db.Register("a", "F pay").ok());
  ASSERT_TRUE(db.Register("b", "G !pay").ok());
  ASSERT_TRUE(db.Unregister(0).ok());
  ASSERT_TRUE(db.Replace(1, "F pay").ok());

  const std::string path = dir.file("image.ctdb");
  ASSERT_TRUE(broker::SaveDatabaseToFile(db, path).ok());
  auto loaded = broker::LoadDatabaseFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ((*loaded)->size(), db.size());
  EXPECT_EQ((*loaded)->last_sequence(), db.last_sequence());
  EXPECT_EQ((*loaded)->op_count(), db.op_count());
  for (uint64_t s = 1; s <= db.last_sequence(); ++s) {
    for (const char* q : {"F pay", "G !pay"}) {
      EXPECT_EQ(Matches(**loaded, q, s), Matches(db, q, s))
          << "as_of=" << s << " query " << q;
    }
  }
}

TEST(LifecycleTest, DurableLifecycleSurvivesReopen) {
  testing::TempDir dir("lcdurable");
  uint64_t final_clock = 0;
  {
    auto db = broker::DurableDatabase::Open(dir.path() + "/wal");
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Register("a", "F pay").ok());
    ASSERT_TRUE((*db)->Register("b", "F pay").ok());
    ASSERT_TRUE((*db)->Unregister(0).ok());
    auto clock = (*db)->Replace(1, "G !pay");
    ASSERT_TRUE(clock.ok());
    final_clock = *clock;
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto db = broker::DurableDatabase::Open(dir.path() + "/wal");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->size(), 1u);
  EXPECT_EQ((*db)->last_sequence(), final_clock);
  auto latest = (*db)->Query("G !pay");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->matches, (std::vector<uint32_t>{1}));
  // Recovery replays logged clocks, so time travel survives the reopen.
  auto historic = (*db)->QueryAsOf(2, "F pay");
  ASSERT_TRUE(historic.ok());
  EXPECT_EQ(historic->matches, (std::vector<uint32_t>{0, 1}));
  EXPECT_TRUE((*db)->Close().ok());
}

TEST(LifecycleTest, CheckpointRetentionRaisesTheAsOfFloor) {
  testing::TempDir dir("lcretain");
  broker::DatabaseOptions options;
  options.retention.keep_history_seqs = 1;
  auto db = broker::DurableDatabase::Open(dir.path() + "/wal", {}, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Register("a", "F pay").ok());   // clock 1
  ASSERT_TRUE((*db)->Replace(0, "G !pay").ok());     // clock 2
  ASSERT_TRUE((*db)->Replace(0, "F pay").ok());      // clock 3
  ASSERT_TRUE((*db)->Checkpoint().ok());             // prunes below 3 - 1

  EXPECT_TRUE((*db)->QueryAsOf(1, "F pay").status().IsInvalidArgument());
  auto kept = (*db)->QueryAsOf(2, "G !pay");
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();
  EXPECT_EQ(kept->matches, (std::vector<uint32_t>{0}));
  EXPECT_TRUE((*db)->Close().ok());
}

TEST(LifecycleTest, ShardedRouterRoutesLifecycleAndMergesAsOf) {
  testing::TempDir dir("lcshard");
  broker::DatabaseOptions options;
  options.shards = 2;
  auto db = shard::ShardedDatabase::Open(dir.path() + "/db", {}, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  std::vector<uint32_t> ids;
  for (int i = 0; i < 4; ++i) {
    auto id = (*db)->Register("s" + std::to_string(i), "F pay");
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  EXPECT_EQ((*db)->last_sequence(), 4u);

  auto gone = (*db)->Unregister(ids[1]);           // clock 5
  ASSERT_TRUE(gone.ok()) << gone.status().ToString();
  EXPECT_EQ(*gone, 5u);
  auto swapped = (*db)->Replace(ids[2], "G !pay");  // clock 6
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(*swapped, 6u);

  EXPECT_TRUE((*db)->Unregister(ids[1]).status().IsNotFound());
  EXPECT_TRUE((*db)->Replace(99, "F pay").status().IsNotFound());

  auto latest = (*db)->Query("F pay");
  ASSERT_TRUE(latest.ok());
  std::vector<uint32_t> want = {ids[0], ids[3]};
  std::sort(want.begin(), want.end());
  EXPECT_EQ(latest->matches, want);

  // Scatter-gather as_of: every shard answers at the same global clock.
  auto before = (*db)->QueryAsOf(4, "F pay");
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  std::vector<uint32_t> all = ids;
  std::sort(all.begin(), all.end());
  EXPECT_EQ(before->matches, all);
  auto mid = (*db)->QueryAsOf(5, "F pay");
  ASSERT_TRUE(mid.ok());
  std::vector<uint32_t> without = {ids[0], ids[2], ids[3]};
  std::sort(without.begin(), without.end());
  EXPECT_EQ(mid->matches, without);
  EXPECT_TRUE((*db)->Close().ok());
}

}  // namespace
}  // namespace ctdb
