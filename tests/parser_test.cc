#include "ltl/parser.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ctdb::ltl {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  const Formula* MustParse(const std::string& text) {
    auto result = Parse(text, &fac_, &vocab_);
    EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
    return result.ok() ? *result : fac_.True();
  }
  Status ParseError(const std::string& text) {
    return Parse(text, &fac_, &vocab_).status();
  }
  Vocabulary vocab_;
  FormulaFactory fac_;
};

TEST_F(ParserTest, Atoms) {
  EXPECT_EQ(MustParse("true"), fac_.True());
  EXPECT_EQ(MustParse("false"), fac_.False());
  const Formula* p = MustParse("purchase");
  EXPECT_EQ(p->op(), Op::kProp);
  EXPECT_EQ(vocab_.Name(p->prop()), "purchase");
}

TEST_F(ParserTest, PrecedenceAndBindsTighterThanOr) {
  const Formula* f = MustParse("a | b & c");
  EXPECT_EQ(f->op(), Op::kOr);
  EXPECT_EQ(f->right()->op(), Op::kAnd);
}

TEST_F(ParserTest, TemporalBindsTighterThanAnd) {
  const Formula* f = MustParse("a U b & c U d");
  EXPECT_EQ(f->op(), Op::kAnd);
  EXPECT_EQ(f->left()->op(), Op::kUntil);
  EXPECT_EQ(f->right()->op(), Op::kUntil);
}

TEST_F(ParserTest, UnaryChains) {
  const Formula* f = MustParse("G ! F p");
  EXPECT_EQ(f->op(), Op::kGlobally);
  EXPECT_EQ(f->left()->op(), Op::kNot);
  EXPECT_EQ(f->left()->left()->op(), Op::kFinally);
}

TEST_F(ParserTest, ImpliesIsRightAssociative) {
  const Formula* f = MustParse("a -> b -> c");
  EXPECT_EQ(f->op(), Op::kImplies);
  EXPECT_EQ(f->right()->op(), Op::kImplies);
}

TEST_F(ParserTest, UntilIsRightAssociative) {
  const Formula* f = MustParse("a U b U c");
  EXPECT_EQ(f->op(), Op::kUntil);
  EXPECT_EQ(f->right()->op(), Op::kUntil);
}

TEST_F(ParserTest, AllTemporalBinaries) {
  EXPECT_EQ(MustParse("a U b")->op(), Op::kUntil);
  EXPECT_EQ(MustParse("a W b")->op(), Op::kWeakUntil);
  EXPECT_EQ(MustParse("a R b")->op(), Op::kRelease);
  EXPECT_EQ(MustParse("a B b")->op(), Op::kBefore);
}

TEST_F(ParserTest, DoubleSymbolsAndTilde) {
  EXPECT_EQ(MustParse("a && b"), MustParse("a & b"));
  EXPECT_EQ(MustParse("a || b"), MustParse("a | b"));
  EXPECT_EQ(MustParse("~a"), MustParse("!a"));
}

TEST_F(ParserTest, Iff) {
  const Formula* f = MustParse("a <-> b");
  EXPECT_EQ(f->op(), Op::kIff);
}

TEST_F(ParserTest, ParensOverridePrecedence) {
  const Formula* f = MustParse("(a | b) & c");
  EXPECT_EQ(f->op(), Op::kAnd);
  EXPECT_EQ(f->left()->op(), Op::kOr);
}

TEST_F(ParserTest, PaperTicketCClause) {
  // Ticket C clause 2: G(dateChange -> X(!F dateChange))
  const Formula* f = MustParse("G(dateChange -> X(!F dateChange))");
  EXPECT_EQ(f->op(), Op::kGlobally);
  EXPECT_EQ(f->left()->op(), Op::kImplies);
  EXPECT_EQ(f->left()->right()->op(), Op::kNext);
}

TEST_F(ParserTest, RoundTripThroughToString) {
  for (const char* text : {
           "G !refund",
           "G (dateChange -> X !F dateChange)",
           "G (missedFlight -> !F dateChange)",
           "purchase B (use | missedFlight | refund | dateChange)",
           "(a U (b W c)) R (d B e)",
           "F p <-> G (q -> r)",
       }) {
    const Formula* f = MustParse(text);
    const Formula* again = MustParse(f->ToString(vocab_));
    EXPECT_EQ(f, again) << text << " printed as " << f->ToString(vocab_);
  }
}

TEST_F(ParserTest, Errors) {
  EXPECT_TRUE(ParseError("").IsInvalidArgument());
  EXPECT_TRUE(ParseError("(a").IsInvalidArgument());
  EXPECT_TRUE(ParseError("a b").IsInvalidArgument());
  EXPECT_TRUE(ParseError("a &").IsInvalidArgument());
  EXPECT_TRUE(ParseError("a -").IsInvalidArgument());
  EXPECT_TRUE(ParseError("a <- b").IsInvalidArgument());
  EXPECT_TRUE(ParseError("@").IsInvalidArgument());
  EXPECT_TRUE(ParseError("U a").IsInvalidArgument());
}

TEST_F(ParserTest, RequireKnownEventsRejectsUnknown) {
  ParseOptions strict;
  strict.require_known_events = true;
  EXPECT_TRUE(
      Parse("mystery", &fac_, &vocab_, strict).status().IsNotFound());
  vocab_.Intern("known").status();
  EXPECT_TRUE(Parse("known", &fac_, &vocab_, strict).ok());
}

TEST_F(ParserTest, RandomGarbageNeverCrashes) {
  // Robustness sweep: arbitrary byte soup must produce a Status, never UB.
  Rng rng(0xBADF00D);
  const std::string alphabet = "abXFGUWRB!&|()-><=~ \t01_";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text;
    const size_t len = rng.Uniform(24);
    for (size_t i = 0; i < len; ++i) {
      text += alphabet[rng.Uniform(alphabet.size())];
    }
    auto result = Parse(text, &fac_, &vocab_);
    if (result.ok()) {
      // Whatever parsed must round-trip.
      auto again = Parse((*result)->ToString(vocab_), &fac_, &vocab_);
      ASSERT_TRUE(again.ok()) << text;
      EXPECT_EQ(*again, *result) << text;
    }
  }
}

TEST_F(ParserTest, InternsNewEventsByDefault) {
  EXPECT_FALSE(vocab_.Contains("fresh"));
  MustParse("fresh & other");
  EXPECT_TRUE(vocab_.Contains("fresh"));
  EXPECT_TRUE(vocab_.Contains("other"));
}

TEST_F(ParserTest, TrailingGarbageIsRejected) {
  EXPECT_TRUE(ParseError("a b").IsInvalidArgument());
  EXPECT_TRUE(ParseError("p)").IsInvalidArgument());
  EXPECT_TRUE(ParseError("(a) a").IsInvalidArgument());
  EXPECT_TRUE(ParseError("a U b )").IsInvalidArgument());
}

// Pathologically nested inputs must fail with a Status, not overflow the
// stack. Each shape recurses through a different production: parentheses
// (primary), '!' chains (unary), and right-recursive binary operators.
TEST_F(ParserTest, DeepNestingReturnsStatusInsteadOfOverflowing) {
  const std::string deep_parens = std::string(100000, '(') + "a";
  Status s = ParseError(deep_parens);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("nesting"), std::string::npos) << s.ToString();

  const std::string deep_nots = std::string(100000, '!') + "a";
  EXPECT_TRUE(ParseError(deep_nots).IsInvalidArgument());

  std::string deep_until = "a";
  for (int i = 0; i < 100000; ++i) deep_until += " U a";
  EXPECT_TRUE(ParseError(deep_until).IsInvalidArgument());

  std::string deep_implies = "a";
  for (int i = 0; i < 100000; ++i) deep_implies += " -> a";
  EXPECT_TRUE(ParseError(deep_implies).IsInvalidArgument());
}

TEST_F(ParserTest, NestingUnderTheDefaultLimitParses) {
  // 200 levels is far below the default budget of 1024 recursion units.
  const std::string nested = std::string(200, '(') + "a" + std::string(200, ')');
  EXPECT_NE(MustParse(nested), fac_.True());
  std::string until_chain = "a";
  for (int i = 0; i < 200; ++i) until_chain += " U a";
  MustParse(until_chain);
}

TEST_F(ParserTest, MaxDepthIsConfigurable) {
  ParseOptions shallow;
  shallow.max_depth = 8;
  EXPECT_TRUE(
      Parse("((((((((a))))))))", &fac_, &vocab_, shallow).status()
          .IsInvalidArgument());
  EXPECT_TRUE(Parse("(a)", &fac_, &vocab_, shallow).ok());
}

}  // namespace
}  // namespace ctdb::ltl
