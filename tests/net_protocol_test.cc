// Unit tests for the network wire protocol codec (net/protocol.h):
// round trips for every message shape, streaming ScanFrame semantics, and
// hostile-input rejection — bit flips, truncations, oversized length
// prefixes, trailing garbage, and element counts that promise more bytes
// than the payload holds (the CountFits guard that keeps a hostile count
// from turning into a giant allocation).

#include "net/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ctdb::net {
namespace {

Request SampleRequest(MsgKind kind) {
  switch (kind) {
    case MsgKind::kRegister:
      return Request::Register(7, "lease-42", "G (request -> F grant)");
    case MsgKind::kRegisterBatch:
      return Request::RegisterBatch(
          8, {{"a", "F p1"}, {"b", "G (p1 -> X p2)"}, {"", ""}});
    case MsgKind::kQuery:
      return Request::Query(9, "F (p1 & X p2)", /*as_of=*/17);
    case MsgKind::kQueryBatch:
      return Request::QueryBatch(10, {"F p1", "G p2", "p1 U p2", ""},
                                 /*as_of=*/3);
    case MsgKind::kCheckpoint:
      return Request::Checkpoint(11);
    case MsgKind::kStats:
      return Request::Stats(12);
    case MsgKind::kUnregister:
      return Request::Unregister(13, 42);
    case MsgKind::kReplace:
      return Request::Replace(14, 42, "G !breach");
    case MsgKind::kStreamOpen:
      return Request::StreamOpen(15, "orders", /*as_of=*/23);
    case MsgKind::kStreamAppend:
      // The nesting extremes in one batch: an empty instant, a one-event
      // instant, a multi-event instant with an empty name.
      return Request::StreamAppend(16, "orders",
                                   {{}, {"request"}, {"grant", "", "paid"}});
    case MsgKind::kStreamClose:
      return Request::StreamClose(17, "orders");
    case MsgKind::kResponse:
      break;
  }
  return {};
}

std::vector<Response> SampleResponses() {
  std::vector<Response> all;
  Response reg;
  reg.id = 7;
  reg.request_kind = MsgKind::kRegister;
  reg.ids = {42};
  all.push_back(reg);

  Response batch;
  batch.id = 8;
  batch.request_kind = MsgKind::kRegisterBatch;
  batch.ids = {1, 2, 3};
  all.push_back(batch);

  Response query;
  query.id = 9;
  query.request_kind = MsgKind::kQuery;
  query.answers.push_back({{1, 2, 7}, 1234, 5});
  all.push_back(query);

  Response query_batch;
  query_batch.id = 10;
  query_batch.request_kind = MsgKind::kQueryBatch;
  query_batch.answers.push_back({{3}, 10, 1});
  query_batch.answers.push_back({{}, 4, 0});
  all.push_back(query_batch);

  Response checkpoint;
  checkpoint.id = 11;
  checkpoint.request_kind = MsgKind::kCheckpoint;
  checkpoint.sequence = 99;
  all.push_back(checkpoint);

  Response stats;
  stats.id = 12;
  stats.request_kind = MsgKind::kStats;
  stats.stats_json = "{\"counters\":{\"net.requests\":1}}";
  all.push_back(stats);

  Response unregister;
  unregister.id = 13;
  unregister.request_kind = MsgKind::kUnregister;
  unregister.sequence = 57;
  all.push_back(unregister);

  Response replace;
  replace.id = 14;
  replace.request_kind = MsgKind::kReplace;
  replace.sequence = 58;
  all.push_back(replace);

  Response stream_open;
  stream_open.id = 15;
  stream_open.request_kind = MsgKind::kStreamOpen;
  stream_open.sequence = 23;
  stream_open.tracked = 4;
  all.push_back(stream_open);

  Response stream_append;
  stream_append.id = 16;
  stream_append.request_kind = MsgKind::kStreamAppend;
  stream_append.events = 3;
  stream_append.stepped = 9;
  stream_append.pruned = 3;
  stream_append.verdicts = {{0, monitor::StreamVerdict::kSatisfied},
                            {2, monitor::StreamVerdict::kViolated}};
  all.push_back(stream_append);

  Response stream_close;
  stream_close.id = 17;
  stream_close.request_kind = MsgKind::kStreamClose;
  stream_close.events = 3;
  stream_close.satisfied = 1;
  stream_close.violated = 1;
  stream_close.undetermined = 2;
  stream_close.verdicts = {{0, monitor::StreamVerdict::kSatisfied},
                           {1, monitor::StreamVerdict::kUndetermined},
                           {2, monitor::StreamVerdict::kViolated},
                           {3, monitor::StreamVerdict::kUndetermined}};
  all.push_back(stream_close);

  all.push_back(Response::Error(Request::Query(13, "bad (("),
                                Status::InvalidArgument("parse error")));
  all.push_back(
      Response::Error(Request::Register(14, "x", "F p1"),
                      Status::Unavailable("request queue full")));
  return all;
}

TEST(NetProtocolTest, RequestPayloadRoundTripsEveryKind) {
  for (MsgKind kind :
       {MsgKind::kRegister, MsgKind::kRegisterBatch, MsgKind::kQuery,
        MsgKind::kQueryBatch, MsgKind::kCheckpoint, MsgKind::kStats,
        MsgKind::kUnregister, MsgKind::kReplace, MsgKind::kStreamOpen,
        MsgKind::kStreamAppend, MsgKind::kStreamClose}) {
    const Request request = SampleRequest(kind);
    const std::string payload = EncodeRequestPayload(request);
    Request decoded;
    const Status status = DecodeRequestPayload(payload, &decoded);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(decoded, request);
    // Fixed point: re-encoding reproduces the exact bytes.
    EXPECT_EQ(EncodeRequestPayload(decoded), payload);
  }
}

TEST(NetProtocolTest, ResponsePayloadRoundTripsEveryShape) {
  for (const Response& response : SampleResponses()) {
    const std::string payload = EncodeResponsePayload(response);
    Response decoded;
    const Status status = DecodeResponsePayload(payload, &decoded);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(decoded, response);
    EXPECT_EQ(EncodeResponsePayload(decoded), payload);
  }
}

TEST(NetProtocolTest, FrameRoundTrip) {
  const Request request = SampleRequest(MsgKind::kRegisterBatch);
  const std::string frame = EncodeRequestFrame(request);
  size_t offset = 0;
  Request decoded;
  const Status status = DecodeRequestFrame(frame, &offset, &decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(offset, frame.size());
  EXPECT_EQ(decoded, request);
}

TEST(NetProtocolTest, ErrorResponseEchoesRequestIdentity) {
  const Request request = Request::QueryBatch(77, {"F p1"});
  const Response error =
      Response::Error(request, Status::Unavailable("overloaded"));
  EXPECT_EQ(error.id, 77u);
  EXPECT_EQ(error.request_kind, MsgKind::kQueryBatch);
  EXPECT_TRUE(error.status().IsUnavailable());
  EXPECT_TRUE(error.answers.empty());
  EXPECT_TRUE(error.ids.empty());
}

TEST(NetProtocolTest, ScanFrameStreamsBackToBackFrames) {
  const Request first = SampleRequest(MsgKind::kQuery);
  const Request second = SampleRequest(MsgKind::kCheckpoint);
  const std::string stream =
      EncodeRequestFrame(first) + EncodeRequestFrame(second);

  size_t offset = 0;
  std::string_view payload;
  ASSERT_EQ(ScanFrame(stream, &offset, &payload), FrameScan::kFrame);
  Request decoded;
  ASSERT_TRUE(DecodeRequestPayload(payload, &decoded).ok());
  EXPECT_EQ(decoded, first);

  ASSERT_EQ(ScanFrame(stream, &offset, &payload), FrameScan::kFrame);
  ASSERT_TRUE(DecodeRequestPayload(payload, &decoded).ok());
  EXPECT_EQ(decoded, second);
  EXPECT_EQ(offset, stream.size());
  EXPECT_EQ(ScanFrame(stream, &offset, &payload), FrameScan::kNeedMore);
}

TEST(NetProtocolTest, ScanFrameNeedsMoreOnEveryProperPrefix) {
  const std::string frame =
      EncodeRequestFrame(SampleRequest(MsgKind::kRegister));
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    size_t offset = 0;
    std::string_view payload;
    EXPECT_EQ(ScanFrame(std::string_view(frame).substr(0, cut), &offset,
                        &payload),
              FrameScan::kNeedMore)
        << "prefix length " << cut;
    EXPECT_EQ(offset, 0u);  // offset must not move without a frame
  }
}

TEST(NetProtocolTest, ScanFrameRejectsOversizedLengthBeforeAllocating) {
  // length prefix = 0xFFFFFFFF: must come back kCorrupt immediately, even
  // though only 8 header bytes are present (no attempt to wait for 4 GiB).
  const std::string header = {'\xff', '\xff', '\xff', '\xff',
                              '\0',   '\0',   '\0',   '\0'};
  size_t offset = 0;
  std::string_view payload;
  EXPECT_EQ(ScanFrame(header, &offset, &payload), FrameScan::kCorrupt);
}

TEST(NetProtocolTest, ScanFrameRejectsCrcMismatch) {
  std::string frame = EncodeRequestFrame(SampleRequest(MsgKind::kQuery));
  frame[kFrameHeaderBytes] ^= 0x01;  // flip one payload bit
  size_t offset = 0;
  std::string_view payload;
  EXPECT_EQ(ScanFrame(frame, &offset, &payload), FrameScan::kCorrupt);
}

TEST(NetProtocolTest, ZeroLengthPayloadIsCorrupt) {
  // A zero-length payload has a valid CRC (crc of "") but no kind byte.
  const std::string frame = {'\0', '\0', '\0', '\0', '\0', '\0', '\0', '\0'};
  size_t offset = 0;
  std::string_view payload;
  ASSERT_EQ(ScanFrame(frame, &offset, &payload), FrameScan::kFrame);
  EXPECT_TRUE(payload.empty());
  Request request;
  EXPECT_TRUE(DecodeRequestPayload(payload, &request).IsCorruption());
  Response response;
  EXPECT_TRUE(DecodeResponsePayload(payload, &response).IsCorruption());
}

TEST(NetProtocolTest, SingleBitFlipsNeverDecodeToADifferentMessage) {
  // Any single bit flip either fails to decode or (if it lands in free
  // bytes) must still round-trip; it must never silently produce a message
  // that re-encodes differently.
  const Request request = SampleRequest(MsgKind::kRegisterBatch);
  const std::string payload = EncodeRequestPayload(request);
  for (size_t byte = 0; byte < payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = payload;
      mutated[byte] ^= static_cast<char>(1 << bit);
      Request decoded;
      const Status status = DecodeRequestPayload(mutated, &decoded);
      if (status.ok()) {
        EXPECT_EQ(EncodeRequestPayload(decoded), mutated)
            << "byte " << byte << " bit " << bit;
      } else {
        EXPECT_TRUE(status.IsCorruption()) << status.ToString();
      }
    }
  }
}

TEST(NetProtocolTest, TrailingGarbageIsCorrupt) {
  for (MsgKind kind : {MsgKind::kQuery, MsgKind::kCheckpoint}) {
    std::string payload = EncodeRequestPayload(SampleRequest(kind));
    payload.push_back('\0');
    Request request;
    EXPECT_TRUE(DecodeRequestPayload(payload, &request).IsCorruption());
  }
  std::string payload = EncodeResponsePayload(SampleResponses()[0]);
  payload.push_back('x');
  Response response;
  EXPECT_TRUE(DecodeResponsePayload(payload, &response).IsCorruption());
}

TEST(NetProtocolTest, TruncatedPayloadsAreCorrupt) {
  for (MsgKind kind :
       {MsgKind::kRegister, MsgKind::kRegisterBatch, MsgKind::kQuery,
        MsgKind::kQueryBatch, MsgKind::kStreamOpen, MsgKind::kStreamAppend,
        MsgKind::kStreamClose}) {
    const std::string payload = EncodeRequestPayload(SampleRequest(kind));
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      Request request;
      const Status status =
          DecodeRequestPayload(std::string_view(payload).substr(0, cut),
                               &request);
      EXPECT_TRUE(status.IsCorruption())
          << "kind " << static_cast<int>(kind) << " cut " << cut << ": "
          << status.ToString();
    }
  }
}

TEST(NetProtocolTest, HostileElementCountIsRejectedWithoutAllocating) {
  // kQueryBatch payload claiming 2^31 queries backed by 4 bytes. The
  // decoder must reject it instead of resizing a vector to the count.
  std::string payload;
  payload.push_back(static_cast<char>(MsgKind::kQueryBatch));
  payload.append(8, '\0');                   // id
  payload += {'\0', '\0', '\0', '\x80'};     // count = 0x80000000
  payload.append(4, '\0');                   // only 4 bytes of "queries"
  Request request;
  EXPECT_TRUE(DecodeRequestPayload(payload, &request).IsCorruption());

  // Same attack through a string length inside kRegister.
  std::string reg;
  reg.push_back(static_cast<char>(MsgKind::kRegister));
  reg.append(8, '\0');                       // id
  reg += {'\xff', '\xff', '\xff', '\x7f'};   // name length ~2 GiB
  Request reg_request;
  EXPECT_TRUE(DecodeRequestPayload(reg, &reg_request).IsCorruption());
}

TEST(NetProtocolTest, UnknownKindAndBadStatusCodeAreCorrupt) {
  std::string payload;
  payload.push_back('\x1f');  // kind 31: not a request, not kResponse
  payload.append(8, '\0');
  Request request;
  EXPECT_TRUE(DecodeRequestPayload(payload, &request).IsCorruption());
  Response response;
  EXPECT_TRUE(DecodeResponsePayload(payload, &response).IsCorruption());

  // A response frame whose status code is past the enum's last value.
  std::string resp = EncodeResponsePayload(SampleResponses()[0]);
  resp[9 + 1] = '\x7f';  // kResponse u8 · id u64 · request_kind u8 · code u8
  Response bad;
  EXPECT_TRUE(DecodeResponsePayload(resp, &bad).IsCorruption());
}

TEST(NetProtocolTest, IsRequestKindCoversExactlyTheElevenOperations) {
  for (int kind = 0; kind < 256; ++kind) {
    const bool expected = kind >= 1 && kind <= 11;
    EXPECT_EQ(IsRequestKind(static_cast<uint8_t>(kind)), expected) << kind;
  }
}

TEST(NetProtocolTest, OutOfRangeVerdictByteIsCorrupt) {
  // The verdict list is the one enum-carrying body: a byte past kViolated
  // (2) must be rejected, not cast through. Both verdict-bearing response
  // shapes end with a verdict entry, so the last byte IS a verdict byte.
  for (const Response& response : SampleResponses()) {
    if (response.verdicts.empty()) continue;
    std::string payload = EncodeResponsePayload(response);
    payload.back() = '\x03';
    Response decoded;
    EXPECT_TRUE(DecodeResponsePayload(payload, &decoded).IsCorruption())
        << "request_kind " << static_cast<int>(response.request_kind);
  }
}

TEST(NetProtocolTest, TruncatedStreamResponsesAreCorrupt) {
  for (const Response& response : SampleResponses()) {
    if (response.request_kind != MsgKind::kStreamOpen &&
        response.request_kind != MsgKind::kStreamAppend &&
        response.request_kind != MsgKind::kStreamClose) {
      continue;
    }
    const std::string payload = EncodeResponsePayload(response);
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      Response decoded;
      const Status status = DecodeResponsePayload(
          std::string_view(payload).substr(0, cut), &decoded);
      EXPECT_TRUE(status.IsCorruption())
          << "kind " << static_cast<int>(response.request_kind) << " cut "
          << cut << ": " << status.ToString();
    }
  }
}

TEST(NetProtocolTest, HostileVerdictCountIsRejectedWithoutAllocating) {
  // A stream-append response claiming 2^31 verdict entries backed by
  // nothing: the CountFits guard must reject before resizing.
  Response response;
  response.id = 16;
  response.request_kind = MsgKind::kStreamAppend;
  response.events = 1;
  std::string payload = EncodeResponsePayload(response);
  // The payload ends with the u32 verdict count (0); replace it.
  payload.resize(payload.size() - 4);
  payload += {'\0', '\0', '\0', '\x80'};  // count = 0x80000000
  Response decoded;
  EXPECT_TRUE(DecodeResponsePayload(payload, &decoded).IsCorruption());
}

}  // namespace
}  // namespace ctdb::net
