// Concurrency tests for the snapshot-isolated read path: readers querying
// while writers register, snapshot replay consistency, and shared-executor
// growth. These are the tests the CI TSan job is aimed at (DESIGN.md §8) —
// they are small enough to run everywhere, but their value is the
// data-race-freedom they demonstrate under `CTDB_SANITIZE=thread`.

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "broker/database.h"
#include "workload/generator.h"

namespace ctdb::broker {
namespace {

/// Pre-generates contract and query texts (p1..pN vocabulary) so the
/// threads below only exercise the database, not the generator.
struct Workload {
  std::vector<std::string> contracts;
  std::vector<std::string> queries;
  size_t vocabulary_size = 10;

  static Workload Make(size_t contracts, size_t queries, uint64_t seed) {
    Workload w;
    Vocabulary vocab;
    ltl::FormulaFactory factory;
    workload::GeneratorOptions copt;
    copt.vocabulary_size = w.vocabulary_size;
    copt.properties = 2;
    workload::SpecGenerator contract_gen(copt, seed, &vocab, &factory);
    for (size_t i = 0; i < contracts; ++i) {
      auto spec = contract_gen.Next();
      if (spec.ok()) w.contracts.push_back(spec->text);
    }
    workload::GeneratorOptions qopt = copt;
    qopt.properties = 1;
    workload::SpecGenerator query_gen(qopt, seed + 1, &vocab, &factory);
    for (size_t i = 0; i < queries; ++i) {
      auto spec = query_gen.Next();
      if (spec.ok()) w.queries.push_back(spec->text);
    }
    return w;
  }

  /// Interns the whole p1..pN vocabulary so queries can never cite an
  /// unknown event regardless of which contracts are registered yet.
  void InternVocabulary(ContractDatabase* db) const {
    for (size_t i = 1; i <= vocabulary_size; ++i) {
      ASSERT_TRUE(db->InternEvent("p" + std::to_string(i)).ok());
    }
  }
};

/// Readers race writers; every reader pins a snapshot and checks that the
/// optimized parallel evaluation agrees with the unoptimized serial scan *of
/// that same snapshot* — the snapshot-isolation correctness oracle.
TEST(DatabaseConcurrencyTest, ReadersAgreeWithSerialReplayWhileWritersRegister) {
  const Workload w = Workload::Make(/*contracts=*/24, /*queries=*/6, 42);
  ASSERT_GE(w.contracts.size(), 8u);
  ASSERT_GE(w.queries.size(), 3u);

  DatabaseOptions dopt;
  dopt.threads = 2;
  ContractDatabase db(dopt);
  w.InternVocabulary(&db);

  // Seed the database with a few contracts so early readers see matches.
  const size_t preloaded = 4;
  for (size_t i = 0; i < preloaded; ++i) {
    ASSERT_TRUE(db.Register("pre" + std::to_string(i), w.contracts[i]).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};

  std::thread writer([&] {
    for (size_t i = preloaded; i < w.contracts.size(); ++i) {
      auto id = db.Register("c" + std::to_string(i), w.contracts[i]);
      if (!id.ok()) ++failures;
    }
    stop.store(true, std::memory_order_release);
  });

  QueryOptions optimized;
  optimized.threads = 2;  // exercises the shared pool concurrently
  QueryOptions serial_unopt;
  serial_unopt.use_prefilter = false;
  serial_unopt.use_projections = false;
  serial_unopt.threads = 1;

  std::vector<std::thread> readers;
  for (size_t r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      size_t round = 0;
      while (!stop.load(std::memory_order_acquire) || round == 0) {
        const std::shared_ptr<const DatabaseSnapshot> snap = db.Snapshot();
        const std::string& q = w.queries[(r + round) % w.queries.size()];
        auto fast = snap->Query(q, optimized);
        auto slow = snap->Query(q, serial_unopt);
        if (!fast.ok() || !slow.ok() || fast->matches != slow->matches) {
          ++failures;
        } else {
          for (uint32_t id : fast->matches) {
            if (id >= snap->size()) ++failures;
          }
        }
        ++round;
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(db.size(), w.contracts.size());
}

/// The database-level entry points (Query/QueryBatch against the *current*
/// snapshot, sharing the lazily grown executor) racing a writer.
TEST(DatabaseConcurrencyTest, QueryAndBatchSmokeUnderConcurrentWriter) {
  const Workload w = Workload::Make(/*contracts=*/16, /*queries=*/4, 7);
  ASSERT_GE(w.contracts.size(), 8u);
  ASSERT_GE(w.queries.size(), 3u);

  ContractDatabase db;
  w.InternVocabulary(&db);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(db.Register("pre" + std::to_string(i), w.contracts[i]).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};

  std::thread writer([&] {
    for (size_t i = 4; i < w.contracts.size(); ++i) {
      if (!db.Register("c" + std::to_string(i), w.contracts[i]).ok()) {
        ++failures;
      }
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (size_t r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      // Each round requests more concurrency than the last, so the shared
      // executor grows in place while in use (the EnsurePool race).
      size_t round = 0;
      while (!stop.load(std::memory_order_acquire) || round == 0) {
        QueryOptions options;
        options.threads = 1 + (round + r) % 4;
        auto single = db.Query(w.queries[round % w.queries.size()], options);
        if (!single.ok()) ++failures;
        auto batch = db.QueryBatch(w.queries, options);
        if (!batch.ok() || batch->size() != w.queries.size()) {
          ++failures;
        } else {
          for (const QueryResult& qr : *batch) {
            if (!std::is_sorted(qr.matches.begin(), qr.matches.end())) {
              ++failures;
            }
          }
        }
        ++round;
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);
}

/// Writers contending on the writer mutex: concurrent Register calls are
/// serialized, every contract lands, and ids stay dense.
TEST(DatabaseConcurrencyTest, ConcurrentWritersSerialize) {
  const Workload w = Workload::Make(/*contracts=*/16, /*queries=*/1, 3);
  ASSERT_GE(w.contracts.size(), 8u);

  ContractDatabase db;
  w.InternVocabulary(&db);
  std::atomic<size_t> failures{0};
  std::vector<std::thread> writers;
  const size_t per_writer = w.contracts.size() / 2;
  for (size_t t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = 0; i < per_writer; ++i) {
        const size_t k = t * per_writer + i;
        if (!db.Register("w" + std::to_string(k), w.contracts[k]).ok()) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(db.size(), 2 * per_writer);
  for (uint32_t id = 0; id < db.size(); ++id) {
    EXPECT_EQ(db.contract(id).id, id);
  }
}

}  // namespace
}  // namespace ctdb::broker
